"""The ``"auto"`` portfolio solver: route cheaply, race when it matters.

No single MinMemory algorithm dominates across the benchmark families:
``postorder`` is the fastest sweep and optimal on chains and assembly
trees, but its peak can be arbitrarily worse than optimal on harpoon
shapes (the paper's Figure 2 construction), where Liu's hill--valley
algorithm is exact.  This module adds a portfolio entry that makes the
choice automatically:

* :func:`tree_features` extracts O(p) structural features from the flat
  :class:`~repro.core.kernel.TreeKernel`;
* :data:`ROUTING_TABLE` -- a plain-data decision list fitted offline from
  the committed ``BENCH`` optimality ratios by ``tools/fit_portfolio.py``
  -- maps those features to the predicted-best in-core algorithm;
* above :data:`RACE_NODE_THRESHOLD` nodes, where a wrong pick is most
  expensive and the sweeps are slow enough to amortise process overhead,
  ``auto`` instead *races* :data:`RACE_CANDIDATES` through the persistent
  shared-memory engine (:mod:`repro.solvers.engine`) and keeps the winner
  by ``(peak_memory, io_volume, candidate order)`` -- never wall time, so
  the result is deterministic whichever candidate finishes first.

The table is deliberately conservative: every rule routes to an *exact*
algorithm (``liu``, ``minmem``) except the pure-chain rule, whose
traversal is forced and therefore optimal by construction -- so routing
never gives up peak quality, only picks the cheapest sweep that keeps
it.  ``tests/differential`` asserts the acceptance criterion: on every
bench family (and on adversarially drawn trees), ``auto``'s peak is
within :data:`TOLERANCE` of the best single in-core algorithm.
"""

from __future__ import annotations

import math
import multiprocessing
import operator
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.kernel import TreeKernel
from ..core.tree import Tree
from .registry import register_solver
from .report import SolveReport

__all__ = [
    "ROUTING_TABLE",
    "RACE_CANDIDATES",
    "RACE_NODE_THRESHOLD",
    "TOLERANCE",
    "tree_features",
    "route",
]

#: acceptance bound: auto's peak vs the best single in-core algorithm
TOLERANCE = 1.05

#: node count above which ``auto`` races instead of routing
RACE_NODE_THRESHOLD = 20_000

#: the algorithms raced above the threshold (postorder: fastest sweep,
#: optimal on most shapes; liu: exact everywhere, covers postorder's
#: worst cases).  Order is the deterministic tie-break.
RACE_CANDIDATES = ("postorder", "liu")

#: Decision list fitted from the committed BENCH optimality ratios (see
#: ``tools/fit_portfolio.py``, which re-derives and validates it).  Rules
#: are tried top to bottom; the first whose conditions all hold routes.
#: Order matters: flat harpoons have ``chain_frac == 1.0``, so the
#: harpoon rule must fire before the chain rule.
ROUTING_TABLE: Tuple[Dict[str, Any], ...] = (
    {
        # harpoon-shaped trees: heavy leaves feeding long chains are the
        # postorder worst case (ratios 1.23-2.67 in BENCH); Liu is exact
        "rule": "harpoon-like",
        "when": (("leaf_f_ratio", ">=", 2.0),),
        "algorithm": "liu",
    },
    {
        # pure chains: every internal node has one child, so the
        # bottom-up order is forced and the cheapest sweep is optimal by
        # construction -- the one route that skips an exact algorithm
        "rule": "chain-dominated",
        "when": (("chain_frac", ">=", 1.0),),
        "algorithm": "postorder",
    },
    {
        # assembly-like trees (elimination trees, multifrontal
        # pipelines): large execution files relative to outputs; minmem
        # is exact and is the paper's fast algorithm on exactly this shape
        "rule": "assembly-like",
        "when": (("n_share", ">=", 0.3),),
        "algorithm": "minmem",
    },
    {
        # everything else (mixed random shapes reach postorder ratios up
        # to 1.21): pay for the exact hill--valley algorithm
        "rule": "default",
        "when": (),
        "algorithm": "liu",
    },
)

_OPS = {
    ">=": operator.ge,
    "<=": operator.le,
    ">": operator.gt,
    "<": operator.lt,
}


def tree_features(kern: TreeKernel) -> Dict[str, float]:
    """Cheap structural features of a task tree, for portfolio routing.

    All features are computed in two O(p) passes over the flat arrays of
    ``kern`` -- negligible next to any solver sweep -- and every value is
    a plain float so the dict serialises into report extras unchanged.

    Parameters
    ----------
    kern : TreeKernel
        The flat form of the tree (:meth:`Tree.kernel
        <repro.core.tree.Tree.kernel>`).

    Returns
    -------
    dict of str to float
        ``nodes``
            Node count ``p``.
        ``depth``
            Height of the tree (root-leaf edge count, 0 for a single
            node).
        ``max_fanout``
            Largest child count of any node.
        ``leaf_frac``
            Fraction of nodes that are leaves.
        ``chain_frac``
            Fraction of *internal* nodes with exactly one child (1.0 for
            a pure chain or a single node).
        ``n_share``
            Share of execution-file volume in the total weight,
            ``sum(n) / (sum(f) + sum(n))`` -- high on assembly trees,
            near zero in the pebble-game model where ``n == 0``.
        ``mem_spread``
            ``max(mem_req) / mean(mem_req)``: how much the heaviest
            node's requirement stands out.
        ``leaf_f_ratio``
            Mean leaf output size over mean output size -- the
            "harpoon-ness" signal; heavy leaves are what break
            postorder's optimality.

    Examples
    --------
    >>> from repro.core.builders import chain_tree
    >>> feats = tree_features(chain_tree(5, f=1.0, n=0.0).kernel())
    >>> feats["chain_frac"]
    1.0
    """
    p = kern.size
    parent, f, n = kern.parent, kern.f, kern.n
    child_ptr, mem_req = kern.child_ptr, kern.mem_req

    height = 0
    depth = [0] * p
    for i in range(1, p):  # parent[i] < i: one forward pass suffices
        d = depth[parent[i]] + 1
        depth[i] = d
        if d > height:
            height = d

    leaves = 0
    chains = 0
    max_fanout = 0
    leaf_f_total = 0.0
    for i in range(p):
        degree = child_ptr[i + 1] - child_ptr[i]
        if degree == 0:
            leaves += 1
            leaf_f_total += f[i]
        elif degree == 1:
            chains += 1
        if degree > max_fanout:
            max_fanout = degree

    total_f = math.fsum(f)
    total_n = math.fsum(n)
    total_weight = total_f + total_n
    internal = p - leaves
    mean_f = total_f / p
    mean_mem = math.fsum(mem_req) / p
    mean_leaf_f = leaf_f_total / leaves if leaves else 0.0
    return {
        "nodes": float(p),
        "depth": float(height),
        "max_fanout": float(max_fanout),
        "leaf_frac": leaves / p,
        "chain_frac": (chains / internal) if internal else 1.0,
        "n_share": (total_n / total_weight) if total_weight else 0.0,
        "mem_spread": (max(mem_req) / mean_mem) if mean_mem else 1.0,
        "leaf_f_ratio": (mean_leaf_f / mean_f) if mean_f else 1.0,
    }


def route(features: Dict[str, float]) -> Tuple[str, str]:
    """Apply :data:`ROUTING_TABLE` to ``features``; ``(rule, algorithm)``."""
    for entry in ROUTING_TABLE:
        if all(
            _OPS[op](features[key], threshold)
            for key, op, threshold in entry["when"]
        ):
            return entry["rule"], entry["algorithm"]
    raise AssertionError("ROUTING_TABLE must end with a catch-all rule")


def _race(tree, kern: TreeKernel, engine: str) -> List[SolveReport]:
    """One report per :data:`RACE_CANDIDATES`, racing via the persistent
    engine in the main process and sequentially inside worker processes
    (nesting pools inside an engine worker would deadlock the arena)."""
    from .facade import _dispatch, solve_many

    if multiprocessing.parent_process() is None:
        (by_name,) = solve_many(
            [kern],
            RACE_CANDIDATES,
            workers=len(RACE_CANDIDATES),
            engine=engine,
        )
        return [by_name[name] for name in RACE_CANDIDATES]
    return [
        _dispatch(tree, name, None, {"engine": engine}, strict=False)
        for name in RACE_CANDIDATES
    ]


@register_solver(
    "auto",
    family="portfolio",
    summary="portfolio: route on tree features, race the sweeps when large",
    aliases=("portfolio",),
)
def _solve_auto(
    tree: Tree,
    *,
    engine: str = "kernel",
    race_threshold: Optional[float] = None,
    **_ignored: Any,
) -> SolveReport:
    """Pick the in-core algorithm automatically; see the module docstring."""
    kern = tree if isinstance(tree, TreeKernel) else tree.kernel()
    features = tree_features(kern)
    threshold = RACE_NODE_THRESHOLD if race_threshold is None else race_threshold

    if kern.size >= threshold:
        reports = _race(tree, kern, engine)
        # deterministic winner: quality, then candidate order -- never time
        winner = min(
            range(len(reports)),
            key=lambda i: (reports[i].peak_memory, reports[i].io_volume, i),
        )
        inner = reports[winner]
        info: Dict[str, Any] = {
            "algorithm": inner.algorithm,
            "mode": "race",
            "candidates": list(RACE_CANDIDATES),
        }
    else:
        from .facade import _dispatch

        rule, chosen = route(features)
        inner = _dispatch(tree, chosen, None, {"engine": engine}, strict=False)
        info = {"algorithm": inner.algorithm, "mode": "route", "rule": rule}

    info["features"] = features
    extras = dict(inner.extras)
    extras["portfolio"] = info
    return replace(inner, extras=extras)
