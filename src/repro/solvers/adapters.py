"""Adapters registering the paper's algorithm families as solvers.

Importing this module populates the registry with:

========================  ==========  ===============================================
name                      family      underlying implementation
========================  ==========  ===============================================
``postorder``             postorder   :func:`repro.core.postorder.best_postorder`
``postorder_natural``     postorder   ``postorder_with_rule(rule="natural")``
``postorder_subtree_memory`` postorder ``postorder_with_rule(rule="subtree_memory")``
``liu``                   exact       :func:`repro.core.liu.liu_optimal_traversal`
``minmem``                exact       :func:`repro.core.minmem.min_mem`
``explore``               explore     :class:`repro.core.explore.ExploreSolver`
``minio``                 minio       :func:`repro.core.minio.run_out_of_core`
``minio_<heuristic>``     minio       same, with the eviction policy pinned
========================  ==========  ===============================================

The legacy spellings ``"PostOrder"``, ``"Liu"`` and ``"MinMem"`` used by the
experiment drivers and the CLI are registered as aliases.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.explore import ExploreSolver
from ..core.kernel import (
    KernelExploreSolver,
    TreeKernel,
    flatten_chunks,
    kernel_replay_traversal,
)
from ..core.liu import flatten_nodes, liu_optimal_traversal
from ..core.minio import HEURISTICS, run_out_of_core
from ..core.minmem import min_mem
from ..core.postorder import POSTORDER_RULES, postorder_with_rule
from ..core.traversal import (
    BOTTOMUP,
    TOPDOWN,
    Traversal,
    TraversalError,
    peak_memory,
)
from ..core.tree import Tree
from .registry import register_solver
from .report import SolveReport

__all__ = ["DEFAULT_ALGORITHM", "ENGINES", "MINMEMORY_SOLVERS"]

#: the facade's default algorithm: exact and fast on assembly trees
DEFAULT_ALGORITHM = "minmem"

#: the two execution engines every built-in solver understands
ENGINES = ("kernel", "reference")

#: canonical names of the three MinMemory solvers compared throughout the paper
MINMEMORY_SOLVERS = ("postorder", "liu", "minmem")


def _as_kernel(tree) -> TreeKernel:
    """The flat form of ``tree`` (cached on :class:`Tree` instances)."""
    return tree if isinstance(tree, TreeKernel) else tree.kernel()


# ----------------------------------------------------------------------
# MinMemory family: PostOrder and its child-ordering rules
# ----------------------------------------------------------------------
def _postorder_report(tree: Tree, rule: str, engine: str) -> SolveReport:
    if engine == "kernel" and rule in POSTORDER_RULES:
        # fast path: the report only needs the peak and the order, so skip
        # the per-node subtree_peak / child_order dicts of PostOrderResult
        from ..core.kernel import kernel_postorder

        kern = _as_kernel(tree)
        memory, order_idx, _, _ = kernel_postorder(kern, rule)
        traversal = Traversal(kern.order_to_ids(order_idx), BOTTOMUP)
    else:
        result = postorder_with_rule(tree, rule=rule, engine=engine)
        memory, traversal = result.memory, result.traversal
    return SolveReport(
        algorithm="postorder" if rule == "liu" else f"postorder_{rule}",
        peak_memory=memory,
        traversal=traversal,
        extras={"rule": rule, "engine": engine},
    )


@register_solver(
    "postorder",
    family="postorder",
    summary="best postorder traversal (Liu's child-ordering rule)",
    aliases=("PostOrder", "best_postorder"),
)
def _solve_postorder(
    tree: Tree, *, rule: str = "liu", engine: str = "kernel", **_ignored
) -> SolveReport:
    """Memory-optimal postorder traversal; ``rule`` selects the child order."""
    return _postorder_report(tree, rule, engine)


@register_solver(
    "postorder_natural",
    family="postorder",
    summary="postorder with children in insertion order (naive baseline)",
)
def _solve_postorder_natural(
    tree: Tree, *, engine: str = "kernel", **_ignored
) -> SolveReport:
    return _postorder_report(tree, "natural", engine)


@register_solver(
    "postorder_subtree_memory",
    family="postorder",
    summary="postorder with children by increasing subtree peak (folklore rule)",
)
def _solve_postorder_subtree(
    tree: Tree, *, engine: str = "kernel", **_ignored
) -> SolveReport:
    return _postorder_report(tree, "subtree_memory", engine)


# ----------------------------------------------------------------------
# exact MinMemory family: Liu and MinMem
# ----------------------------------------------------------------------
@register_solver(
    "liu",
    family="exact",
    summary="Liu's exact hill--valley algorithm (optimal over all traversals)",
    aliases=("Liu",),
)
def _solve_liu(tree: Tree, *, engine: str = "kernel", **_ignored) -> SolveReport:
    if engine == "kernel":
        # fast path: skip the subtree_peak dict and the Segment objects of
        # LiuResult; the report only records the peak, order and segment count
        from ..core.kernel import kernel_liu

        kern = _as_kernel(tree)
        memory, order_idx, _, root_segments = kernel_liu(kern)
        return SolveReport(
            algorithm="liu",
            peak_memory=memory,
            traversal=Traversal(kern.order_to_ids(order_idx), BOTTOMUP),
            extras={"segments": len(root_segments), "engine": engine},
        )
    result = liu_optimal_traversal(tree, engine=engine)
    return SolveReport(
        algorithm="liu",
        peak_memory=result.memory,
        traversal=result.traversal,
        extras={"segments": len(result.segments), "engine": engine},
    )


@register_solver(
    "minmem",
    family="exact",
    summary="the paper's MinMem algorithm (optimal, explore-based)",
    aliases=("MinMem",),
)
def _solve_minmem(
    tree: Tree, *, reuse_states: bool = True, engine: str = "kernel", **_ignored
) -> SolveReport:
    result = min_mem(tree, reuse_states=reuse_states, engine=engine)
    return SolveReport(
        algorithm="minmem",
        peak_memory=result.memory,
        traversal=result.traversal,
        extras={
            "iterations": result.iterations,
            "explore_calls": result.explore_calls,
            "reuse_states": reuse_states,
            "engine": engine,
        },
    )


# ----------------------------------------------------------------------
# Explore: bounded-memory partial exploration (Algorithm 3)
# ----------------------------------------------------------------------
@register_solver(
    "explore",
    family="explore",
    summary="single Explore sweep with a fixed memory budget (Algorithm 3)",
)
def _solve_explore(
    tree: Tree,
    *,
    memory: Optional[float] = None,
    reuse_states: bool = True,
    engine: str = "kernel",
    **_ignored,
) -> SolveReport:
    """Partial traversal reachable with ``memory`` (default ``max MemReq``)."""
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if engine == "kernel":
        kern = _as_kernel(tree)
        if memory is None:
            memory = kern.max_mem_req()
        solver = KernelExploreSolver(kern, reuse_states=reuse_states)
        resident, cut, chunks, peak, required = solver.explore(0, memory)
        order = kern.order_to_ids(flatten_chunks(chunks))
        completed = len(order) == kern.size
        cut_ids = [kern.ids[j] for j in cut]
    else:
        if not isinstance(tree, Tree):
            tree = tree.to_tree()
        if memory is None:
            memory = tree.max_mem_req()
        solver = ExploreSolver(tree, reuse_states=reuse_states)
        result = solver.explore(tree.root, memory)
        resident, peak, required = result.resident, result.peak, result.required
        order = tuple(flatten_nodes(result.traversal_chunks))
        completed = len(order) == tree.size
        cut_ids = list(result.cut)
    return SolveReport(
        algorithm="explore",
        peak_memory=required,
        traversal=Traversal(order, TOPDOWN),
        extras={
            "memory_limit": memory,
            "completed": completed,
            "resident": resident,
            "cut": cut_ids,
            # memory unlocking the next node; "inf" when fully processed
            "next_peak": "inf" if math.isinf(peak) else peak,
            "engine": engine,
        },
    )


# ----------------------------------------------------------------------
# MinIO family: out-of-core scheduling with the six eviction heuristics
# ----------------------------------------------------------------------
def _minio_report(
    tree: Tree,
    heuristic: str,
    memory: Optional[float],
    traversal: Optional[Traversal],
    traversal_algorithm: str,
    in_core_peak: Optional[float],
    engine: str,
) -> SolveReport:
    # local import: the facade imports this module at package init time
    from .facade import _dispatch

    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    if traversal is None:
        # lenient dispatch: third-party base solvers need not declare the
        # engine option (it is dropped for them, exactly as in solve_many)
        base = _dispatch(
            tree, traversal_algorithm, None, {"engine": engine}, strict=False
        )
        traversal, in_core_peak = base.traversal, base.peak_memory
        traversal_algorithm = base.algorithm
    else:
        if in_core_peak is None:
            # callers sweeping many memory values over one traversal should
            # pass in_core_peak to skip this O(p) replay
            if engine == "kernel" or not isinstance(tree, Tree):
                kern = _as_kernel(tree)
                try:
                    in_core_peak, _, _ = kernel_replay_traversal(
                        kern,
                        kern.order_to_indices(traversal.order),
                        topdown=traversal.convention == TOPDOWN,
                    )
                except KeyError:
                    raise TraversalError(
                        "order is not a permutation of the tree nodes"
                    ) from None
                except ValueError as exc:
                    raise TraversalError(str(exc)) from None
            else:
                in_core_peak = peak_memory(tree, traversal)
        traversal_algorithm = "given"
    if memory is None:
        # the CLI's historical default: halfway between the bound below which
        # no execution exists and the in-core peak of the traversal
        memory = (tree.max_mem_req() + in_core_peak) / 2.0
    result = run_out_of_core(tree, memory, traversal, heuristic, engine=engine)
    return SolveReport(
        algorithm=f"minio_{heuristic}",
        peak_memory=result.peak_resident,
        traversal=result.schedule.traversal,
        io_volume=result.io_volume,
        schedule=result.schedule,
        extras={
            "heuristic": heuristic,
            "memory_limit": memory,
            "io_operations": result.io_operations,
            "traversal_algorithm": traversal_algorithm,
            "in_core_peak": in_core_peak,
            "engine": engine,
        },
    )


@register_solver(
    "minio",
    family="minio",
    summary="out-of-core schedule under a memory bound (pick --heuristic)",
    aliases=("out_of_core",),
)
def _solve_minio(
    tree: Tree,
    *,
    memory: Optional[float] = None,
    heuristic: str = "first_fit",
    traversal: Optional[Traversal] = None,
    traversal_algorithm: str = DEFAULT_ALGORITHM,
    in_core_peak: Optional[float] = None,
    engine: str = "kernel",
    **_ignored,
) -> SolveReport:
    """Replay a traversal out-of-core; evicts files with ``heuristic``."""
    return _minio_report(
        tree, heuristic, memory, traversal, traversal_algorithm, in_core_peak, engine
    )


def _register_minio_variant(heuristic: str) -> None:
    @register_solver(
        f"minio_{heuristic}",
        family="minio",
        summary=f"out-of-core schedule with the {heuristic!r} eviction policy",
    )
    def _variant(
        tree: Tree,
        *,
        memory: Optional[float] = None,
        traversal: Optional[Traversal] = None,
        traversal_algorithm: str = DEFAULT_ALGORITHM,
        in_core_peak: Optional[float] = None,
        engine: str = "kernel",
        **_ignored,
    ) -> SolveReport:
        return _minio_report(
            tree, heuristic, memory, traversal, traversal_algorithm, in_core_peak, engine
        )


for _heuristic in HEURISTICS:
    _register_minio_variant(_heuristic)

assert set(POSTORDER_RULES) == {"liu", "subtree_memory", "natural"}, (
    "postorder adapters must cover every registered child-ordering rule"
)
