"""Adapters registering the paper's algorithm families as solvers.

Importing this module populates the registry with:

========================  ==========  ===============================================
name                      family      underlying implementation
========================  ==========  ===============================================
``postorder``             postorder   :func:`repro.core.postorder.best_postorder`
``postorder_natural``     postorder   ``postorder_with_rule(rule="natural")``
``postorder_subtree_memory`` postorder ``postorder_with_rule(rule="subtree_memory")``
``liu``                   exact       :func:`repro.core.liu.liu_optimal_traversal`
``minmem``                exact       :func:`repro.core.minmem.min_mem`
``explore``               explore     :class:`repro.core.explore.ExploreSolver`
``minio``                 minio       :func:`repro.core.minio.run_out_of_core`
``minio_<heuristic>``     minio       same, with the eviction policy pinned
========================  ==========  ===============================================

The legacy spellings ``"PostOrder"``, ``"Liu"`` and ``"MinMem"`` used by the
experiment drivers and the CLI are registered as aliases.
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.explore import ExploreSolver
from ..core.liu import flatten_nodes, liu_optimal_traversal
from ..core.minio import HEURISTICS, run_out_of_core
from ..core.minmem import min_mem
from ..core.postorder import POSTORDER_RULES, postorder_with_rule
from ..core.traversal import TOPDOWN, Traversal, peak_memory
from ..core.tree import Tree
from .registry import register_solver
from .report import SolveReport

__all__ = ["DEFAULT_ALGORITHM", "MINMEMORY_SOLVERS"]

#: the facade's default algorithm: exact and fast on assembly trees
DEFAULT_ALGORITHM = "minmem"

#: canonical names of the three MinMemory solvers compared throughout the paper
MINMEMORY_SOLVERS = ("postorder", "liu", "minmem")


# ----------------------------------------------------------------------
# MinMemory family: PostOrder and its child-ordering rules
# ----------------------------------------------------------------------
def _postorder_report(tree: Tree, rule: str) -> SolveReport:
    result = postorder_with_rule(tree, rule=rule)
    return SolveReport(
        algorithm="postorder" if rule == "liu" else f"postorder_{rule}",
        peak_memory=result.memory,
        traversal=result.traversal,
        extras={"rule": rule},
    )


@register_solver(
    "postorder",
    family="postorder",
    summary="best postorder traversal (Liu's child-ordering rule)",
    aliases=("PostOrder", "best_postorder"),
)
def _solve_postorder(tree: Tree, *, rule: str = "liu", **_ignored) -> SolveReport:
    """Memory-optimal postorder traversal; ``rule`` selects the child order."""
    return _postorder_report(tree, rule)


@register_solver(
    "postorder_natural",
    family="postorder",
    summary="postorder with children in insertion order (naive baseline)",
)
def _solve_postorder_natural(tree: Tree, **_ignored) -> SolveReport:
    return _postorder_report(tree, "natural")


@register_solver(
    "postorder_subtree_memory",
    family="postorder",
    summary="postorder with children by increasing subtree peak (folklore rule)",
)
def _solve_postorder_subtree(tree: Tree, **_ignored) -> SolveReport:
    return _postorder_report(tree, "subtree_memory")


# ----------------------------------------------------------------------
# exact MinMemory family: Liu and MinMem
# ----------------------------------------------------------------------
@register_solver(
    "liu",
    family="exact",
    summary="Liu's exact hill--valley algorithm (optimal over all traversals)",
    aliases=("Liu",),
)
def _solve_liu(tree: Tree, **_ignored) -> SolveReport:
    result = liu_optimal_traversal(tree)
    return SolveReport(
        algorithm="liu",
        peak_memory=result.memory,
        traversal=result.traversal,
        extras={"segments": len(result.segments)},
    )


@register_solver(
    "minmem",
    family="exact",
    summary="the paper's MinMem algorithm (optimal, explore-based)",
    aliases=("MinMem",),
)
def _solve_minmem(tree: Tree, *, reuse_states: bool = True, **_ignored) -> SolveReport:
    result = min_mem(tree, reuse_states=reuse_states)
    return SolveReport(
        algorithm="minmem",
        peak_memory=result.memory,
        traversal=result.traversal,
        extras={
            "iterations": result.iterations,
            "explore_calls": result.explore_calls,
            "reuse_states": reuse_states,
        },
    )


# ----------------------------------------------------------------------
# Explore: bounded-memory partial exploration (Algorithm 3)
# ----------------------------------------------------------------------
@register_solver(
    "explore",
    family="explore",
    summary="single Explore sweep with a fixed memory budget (Algorithm 3)",
)
def _solve_explore(
    tree: Tree, *, memory: Optional[float] = None, reuse_states: bool = True, **_ignored
) -> SolveReport:
    """Partial traversal reachable with ``memory`` (default ``max MemReq``)."""
    if memory is None:
        memory = tree.max_mem_req()
    solver = ExploreSolver(tree, reuse_states=reuse_states)
    result = solver.explore(tree.root, memory)
    order = flatten_nodes(result.traversal_chunks)
    completed = len(order) == tree.size
    return SolveReport(
        algorithm="explore",
        peak_memory=result.required,
        traversal=Traversal(tuple(order), TOPDOWN),
        extras={
            "memory_limit": memory,
            "completed": completed,
            "resident": result.resident,
            "cut": list(result.cut),
            # memory unlocking the next node; "inf" when fully processed
            "next_peak": "inf" if math.isinf(result.peak) else result.peak,
        },
    )


# ----------------------------------------------------------------------
# MinIO family: out-of-core scheduling with the six eviction heuristics
# ----------------------------------------------------------------------
def _minio_report(
    tree: Tree,
    heuristic: str,
    memory: Optional[float],
    traversal: Optional[Traversal],
    traversal_algorithm: str,
    in_core_peak: Optional[float],
) -> SolveReport:
    # local import: the facade imports this module at package init time
    from .facade import solve

    if traversal is None:
        base = solve(tree, traversal_algorithm)
        traversal, in_core_peak = base.traversal, base.peak_memory
        traversal_algorithm = base.algorithm
    else:
        if in_core_peak is None:
            # callers sweeping many memory values over one traversal should
            # pass in_core_peak to skip this O(p) replay
            in_core_peak = peak_memory(tree, traversal)
        traversal_algorithm = "given"
    if memory is None:
        # the CLI's historical default: halfway between the bound below which
        # no execution exists and the in-core peak of the traversal
        memory = (tree.max_mem_req() + in_core_peak) / 2.0
    result = run_out_of_core(tree, memory, traversal, heuristic)
    return SolveReport(
        algorithm=f"minio_{heuristic}",
        peak_memory=result.peak_resident,
        traversal=result.schedule.traversal,
        io_volume=result.io_volume,
        schedule=result.schedule,
        extras={
            "heuristic": heuristic,
            "memory_limit": memory,
            "io_operations": result.io_operations,
            "traversal_algorithm": traversal_algorithm,
            "in_core_peak": in_core_peak,
        },
    )


@register_solver(
    "minio",
    family="minio",
    summary="out-of-core schedule under a memory bound (pick --heuristic)",
    aliases=("out_of_core",),
)
def _solve_minio(
    tree: Tree,
    *,
    memory: Optional[float] = None,
    heuristic: str = "first_fit",
    traversal: Optional[Traversal] = None,
    traversal_algorithm: str = DEFAULT_ALGORITHM,
    in_core_peak: Optional[float] = None,
    **_ignored,
) -> SolveReport:
    """Replay a traversal out-of-core; evicts files with ``heuristic``."""
    return _minio_report(tree, heuristic, memory, traversal, traversal_algorithm, in_core_peak)


def _register_minio_variant(heuristic: str) -> None:
    @register_solver(
        f"minio_{heuristic}",
        family="minio",
        summary=f"out-of-core schedule with the {heuristic!r} eviction policy",
    )
    def _variant(
        tree: Tree,
        *,
        memory: Optional[float] = None,
        traversal: Optional[Traversal] = None,
        traversal_algorithm: str = DEFAULT_ALGORITHM,
        in_core_peak: Optional[float] = None,
        **_ignored,
    ) -> SolveReport:
        return _minio_report(tree, heuristic, memory, traversal, traversal_algorithm, in_core_peak)


for _heuristic in HEURISTICS:
    _register_minio_variant(_heuristic)

assert set(POSTORDER_RULES) == {"liu", "subtree_memory", "natural"}, (
    "postorder adapters must cover every registered child-ordering rule"
)
