"""Decorator-based registry of solvers.

Every algorithm family of the paper (PostOrder and its child-ordering rules,
Liu's exact algorithm, the MinMem/Explore pair, and the MinIO eviction
heuristics) is registered here under a canonical lowercase name, together
with optional aliases (``"PostOrder"``, ``"Liu"``, ``"MinMem"`` keep the
historical spellings used by :mod:`repro.analysis.experiments` and the CLI).

A *solver* is any callable ``(tree, **options) -> SolveReport``; the
:class:`Solver` protocol documents the shape.  Third-party code can plug its
own algorithms into :func:`repro.solvers.solve` by decorating a function with
:func:`register_solver`::

    from repro.solvers import register_solver, SolveReport

    @register_solver("my_alg", family="minmemory", summary="my traversal")
    def my_alg(tree, **options) -> SolveReport:
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

try:  # Protocol is 3.8+; keep a soft fallback for exotic interpreters.
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from ..core.tree import Tree

__all__ = [
    "Solver",
    "SolverSpec",
    "UnknownSolverError",
    "register_solver",
    "get_solver",
    "list_solvers",
    "solver_table",
]


class UnknownSolverError(ValueError):
    """Raised when an algorithm name does not resolve to a registered solver."""


class Solver(Protocol):
    """Callable computing a :class:`~repro.solvers.report.SolveReport`."""

    def __call__(self, tree: Tree, **options):  # pragma: no cover - protocol
        ...


@dataclass(frozen=True)
class SolverSpec:
    """Registry entry: a solver callable plus its metadata.

    Attributes
    ----------
    name:
        Canonical (lowercase) registry name.
    func:
        The solver callable ``(tree, **options) -> SolveReport``.
    family:
        Algorithm family (``"postorder"``, ``"exact"``, ``"explore"``,
        ``"minio"``, ...); used to group solvers in listings.
    summary:
        One-line human description.
    aliases:
        Alternative names accepted by :func:`get_solver` (case-insensitive).
    """

    name: str
    func: Solver
    family: str
    summary: str
    aliases: Tuple[str, ...] = ()

    def __call__(self, tree: Tree, **options):
        return self.func(tree, **options)


_REGISTRY: Dict[str, SolverSpec] = {}
_LOOKUP: Dict[str, str] = {}  # normalized name or alias -> canonical name


def _normalize(name: str) -> str:
    return name.strip().lower().replace("-", "_")


def register_solver(
    name: str,
    *,
    family: str,
    summary: str = "",
    aliases: Tuple[str, ...] = (),
) -> Callable[[Solver], Solver]:
    """Class/function decorator adding a solver to the global registry.

    Re-registering an existing canonical name replaces the previous entry
    (aliases of the old entry are dropped first), so modules can be reloaded
    safely.
    """

    def decorator(func: Solver) -> Solver:
        canonical = _normalize(name)
        doc = (func.__doc__ or "").strip().splitlines()
        spec = SolverSpec(
            name=canonical,
            func=func,
            family=family,
            summary=summary or (doc[0] if doc else canonical),
            aliases=tuple(aliases),
        )
        # validate every key before touching the registry, so a conflicting
        # registration fails atomically and leaves the existing entries usable
        new_keys = {_normalize(key) for key in (canonical, *spec.aliases)}
        for key in (canonical, *spec.aliases):
            owner = _LOOKUP.get(_normalize(key))
            if owner is not None and owner != canonical:
                raise ValueError(
                    f"solver name {key!r} already registered for {owner!r}"
                )
        old = _REGISTRY.get(canonical)
        if old is not None:
            for key in (old.name, *old.aliases):
                if _normalize(key) not in new_keys:
                    _LOOKUP.pop(_normalize(key), None)
        for key in new_keys:
            _LOOKUP[key] = canonical
        _REGISTRY[canonical] = spec
        return func

    return decorator


def get_solver(name: str) -> SolverSpec:
    """Resolve an algorithm name (or alias, case-insensitive) to its spec."""
    if not isinstance(name, str):
        raise UnknownSolverError(f"algorithm name must be a string, got {name!r}")
    canonical = _LOOKUP.get(_normalize(name))
    if canonical is None:
        raise UnknownSolverError(
            f"unknown algorithm {name!r}; expected one of {list_solvers()}"
        )
    return _REGISTRY[canonical]


def list_solvers(family: Optional[str] = None) -> List[str]:
    """Sorted canonical names of the registered solvers (optionally filtered)."""
    return sorted(
        spec.name
        for spec in _REGISTRY.values()
        if family is None or spec.family == family
    )


def solver_table() -> List[SolverSpec]:
    """All registered specs, sorted by (family, name) for display purposes."""
    return sorted(_REGISTRY.values(), key=lambda s: (s.family, s.name))
