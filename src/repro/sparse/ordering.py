"""Fill-reducing orderings.

The paper orders its matrices with MeTiS (nested dissection) and ``amd``
(approximate minimum degree) before building elimination trees.  Neither tool
is available offline, so this module implements the orderings from scratch on
top of the symmetrized pattern:

* :func:`natural_ordering` -- the identity permutation (baseline);
* :func:`rcm_ordering` -- reverse Cuthill--McKee (band-reducing, deep trees);
* :func:`minimum_degree_ordering` -- greedy (exact external) minimum degree
  with an elimination graph, the classical fill-reducing heuristic;
* :func:`nested_dissection_ordering` -- recursive vertex separators obtained
  from BFS level structures rooted at pseudo-peripheral vertices (bushy,
  well-balanced trees, the MeTiS stand-in).

Every function returns a permutation array ``perm`` such that the matrix to
factor is ``A[perm][:, perm]`` -- i.e. ``perm[k]`` is the original index of
the ``k``-th pivot.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .graph import (
    adjacency_lists,
    bfs_levels,
    connected_components,
    pseudo_peripheral_vertex,
    symmetrized_pattern,
)

__all__ = [
    "natural_ordering",
    "rcm_ordering",
    "minimum_degree_ordering",
    "nested_dissection_ordering",
    "ORDERINGS",
    "apply_ordering",
    "permutation_matrix",
]


def natural_ordering(matrix: sp.spmatrix) -> np.ndarray:
    """Identity permutation."""
    return np.arange(matrix.shape[0], dtype=np.int64)


def rcm_ordering(matrix: sp.spmatrix) -> np.ndarray:
    """Reverse Cuthill--McKee ordering of the symmetrized pattern."""
    pattern = symmetrized_pattern(matrix)
    from scipy.sparse.csgraph import reverse_cuthill_mckee

    perm = reverse_cuthill_mckee(sp.csr_matrix(pattern), symmetric_mode=True)
    return np.asarray(perm, dtype=np.int64)


def minimum_degree_ordering(matrix: sp.spmatrix) -> np.ndarray:
    """Greedy minimum-degree ordering with an explicit elimination graph.

    At every step the vertex of smallest current degree is eliminated and its
    neighbourhood is turned into a clique.  A lazy priority queue keeps the
    complexity acceptable for the matrix sizes used in the experiments
    (up to a few thousand rows); this is an exact-degree variant of AMD.
    """
    pattern = symmetrized_pattern(matrix)
    n = pattern.shape[0]
    neighbours: List[set] = [set(map(int, row)) for row in adjacency_lists(pattern)]
    eliminated = np.zeros(n, dtype=bool)
    heap = [(len(neighbours[v]), v) for v in range(n)]
    heapq.heapify(heap)
    order: List[int] = []

    while heap:
        degree, v = heapq.heappop(heap)
        if eliminated[v]:
            continue
        if degree != len(neighbours[v]):
            heapq.heappush(heap, (len(neighbours[v]), v))
            continue
        eliminated[v] = True
        order.append(v)
        nbrs = [w for w in neighbours[v] if not eliminated[w]]
        # connect the neighbourhood into a clique
        for i, w in enumerate(nbrs):
            neighbours[w].discard(v)
            for u in nbrs[i + 1 :]:
                if u not in neighbours[w]:
                    neighbours[w].add(u)
                    neighbours[u].add(w)
        for w in nbrs:
            heapq.heappush(heap, (len(neighbours[w]), w))
        neighbours[v] = set()
    return np.asarray(order, dtype=np.int64)


def nested_dissection_ordering(
    matrix: sp.spmatrix, *, leaf_size: int = 32
) -> np.ndarray:
    """Recursive nested dissection with BFS level-structure separators.

    Subgraphs of at most ``leaf_size`` vertices are ordered with minimum
    degree.  The separator of a larger subgraph is the median BFS level of a
    level structure rooted at a pseudo-peripheral vertex: the two halves are
    ordered recursively, then the separator vertices are numbered last, which
    yields the characteristic bushy assembly trees of graph-partitioning
    orderings.
    """
    pattern = symmetrized_pattern(matrix)
    n = pattern.shape[0]
    adjacency = adjacency_lists(pattern)
    order: List[int] = []

    def order_small(vertices: List[int]) -> List[int]:
        if len(vertices) <= 1:
            return list(vertices)
        sub = _subgraph(pattern, vertices)
        local = minimum_degree_ordering(sub)
        return [vertices[i] for i in local]

    # explicit stack of (vertices, phase); results appended postorder so that
    # separators come after their two halves
    stack: List[List[int]] = [list(range(n))]
    pending: List[List[int]] = []
    while stack:
        vertices = stack.pop()
        if len(vertices) <= leaf_size:
            order.extend(order_small(vertices))
            continue
        allowed = np.zeros(n, dtype=bool)
        allowed[np.asarray(vertices, dtype=int)] = True
        components = _restricted_components(adjacency, vertices, allowed)
        if len(components) > 1:
            stack.extend(components)
            continue
        _, levels = pseudo_peripheral_vertex(adjacency, vertices, allowed)
        if len(levels) < 3:
            order.extend(order_small(vertices))
            continue
        mid = len(levels) // 2
        separator = list(levels[mid])
        half_a = [v for lev in levels[:mid] for v in lev]
        half_b = [v for lev in levels[mid + 1 :] for v in lev]
        if not half_a or not half_b:
            order.extend(order_small(vertices))
            continue
        pending.append(separator)
        stack.append(half_a)
        stack.append(half_b)
    for separator in reversed(pending):
        order.extend(order_small(separator))
    return np.asarray(order, dtype=np.int64)


ORDERINGS = {
    "natural": natural_ordering,
    "rcm": rcm_ordering,
    "minimum_degree": minimum_degree_ordering,
    "nested_dissection": nested_dissection_ordering,
}


def apply_ordering(matrix: sp.spmatrix, perm: Sequence[int]) -> sp.csc_matrix:
    """Symmetric permutation ``A[perm][:, perm]`` as CSC."""
    perm = np.asarray(perm, dtype=np.int64)
    csc = sp.csc_matrix(matrix)
    return sp.csc_matrix(csc[perm][:, perm])


def permutation_matrix(perm: Sequence[int]) -> sp.csr_matrix:
    """Sparse permutation matrix ``P`` with ``P A Pᵀ = A[perm][:, perm]``."""
    perm = np.asarray(perm, dtype=np.int64)
    n = perm.size
    return sp.csr_matrix(
        (np.ones(n), (np.arange(n), perm)), shape=(n, n)
    )


def _subgraph(pattern: sp.csr_matrix, vertices: List[int]) -> sp.csr_matrix:
    idx = np.asarray(vertices, dtype=np.int64)
    return sp.csr_matrix(pattern[idx][:, idx])


def _restricted_components(
    adjacency: Sequence[np.ndarray], vertices: List[int], allowed: np.ndarray
) -> List[List[int]]:
    """Connected components of the subgraph induced by ``vertices``."""
    seen: Dict[int, bool] = {v: False for v in vertices}
    components: List[List[int]] = []
    for start in vertices:
        if seen[start]:
            continue
        comp = [start]
        seen[start] = True
        queue = [start]
        while queue:
            v = queue.pop()
            for w in adjacency[v]:
                w = int(w)
                if allowed[w] and not seen.get(w, True):
                    seen[w] = True
                    comp.append(w)
                    queue.append(w)
        components.append(comp)
    return components
