"""Minimal Matrix Market (coordinate format) reader and writer.

The University of Florida collection distributes matrices in the Matrix
Market exchange format; this module implements the subset needed to load such
files (real / integer / pattern, general or symmetric, coordinate format) and
to write matrices back, without relying on ``scipy.io`` so that the substrate
is self-contained.  The reader is validated against ``scipy.io.mmread`` in
the test suite.
"""

from __future__ import annotations

from pathlib import Path
from typing import Tuple, Union

import numpy as np
import scipy.sparse as sp

__all__ = ["read_matrix_market", "write_matrix_market"]


def read_matrix_market(path: Union[str, Path]) -> sp.csc_matrix:
    """Read a Matrix Market coordinate file into a CSC matrix.

    Supports the ``matrix coordinate`` object with ``real``, ``integer`` or
    ``pattern`` fields and ``general``, ``symmetric`` or
    ``skew-symmetric`` symmetries.  Pattern entries get value 1.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header = handle.readline().strip().lower().split()
        if len(header) < 5 or header[0] != "%%matrixmarket" or header[1] != "matrix":
            raise ValueError(f"{path}: not a Matrix Market matrix file")
        fmt, field, symmetry = header[2], header[3], header[4]
        if fmt != "coordinate":
            raise ValueError(f"{path}: only coordinate format is supported")
        if field not in ("real", "integer", "pattern"):
            raise ValueError(f"{path}: unsupported field {field!r}")
        if symmetry not in ("general", "symmetric", "skew-symmetric"):
            raise ValueError(f"{path}: unsupported symmetry {symmetry!r}")

        line = handle.readline()
        while line.startswith("%") or not line.strip():
            line = handle.readline()
        n_rows, n_cols, nnz = (int(tok) for tok in line.split())

        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        count = 0
        for line in handle:
            line = line.strip()
            if not line or line.startswith("%"):
                continue
            if count >= nnz:
                raise ValueError(
                    f"{path}: more entries than the declared {nnz}"
                )
            parts = line.split()
            rows[count] = int(parts[0]) - 1
            cols[count] = int(parts[1]) - 1
            vals[count] = 1.0 if field == "pattern" else float(parts[2])
            count += 1
        if count != nnz:
            raise ValueError(f"{path}: expected {nnz} entries, found {count}")

    if symmetry == "skew-symmetric":
        bad = (rows == cols) & (vals != 0.0)
        if np.any(bad):
            raise ValueError(
                f"{path}: skew-symmetric file stores {int(bad.sum())} nonzero "
                f"diagonal entries (a_ii = -a_ii forces a zero diagonal)"
            )
    matrix = sp.coo_matrix((vals, (rows, cols)), shape=(n_rows, n_cols))
    if symmetry in ("symmetric", "skew-symmetric"):
        off_diag = rows != cols
        sign = -1.0 if symmetry == "skew-symmetric" else 1.0
        mirror = sp.coo_matrix(
            (sign * vals[off_diag], (cols[off_diag], rows[off_diag])),
            shape=(n_rows, n_cols),
        )
        matrix = matrix + mirror
    return sp.csc_matrix(matrix)


def write_matrix_market(
    matrix: sp.spmatrix, path: Union[str, Path], *, symmetric: bool = False
) -> None:
    """Write a sparse matrix as a Matrix Market coordinate file.

    When ``symmetric`` is True only the lower triangle is stored and the
    header declares ``symmetric`` symmetry.
    """
    path = Path(path)
    coo = sp.coo_matrix(matrix)
    if symmetric:
        keep = coo.row >= coo.col
        coo = sp.coo_matrix(
            (coo.data[keep], (coo.row[keep], coo.col[keep])), shape=coo.shape
        )
    symmetry = "symmetric" if symmetric else "general"
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"%%MatrixMarket matrix coordinate real {symmetry}\n")
        handle.write("% written by repro.sparse.mmio\n")
        handle.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
        for r, c, v in zip(coo.row, coo.col, coo.data):
            handle.write(f"{int(r) + 1} {int(c) + 1} {float(v)!r}\n")
