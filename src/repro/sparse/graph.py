"""Graph utilities over sparse matrix patterns.

The orderings and elimination-tree routines work on the *symmetrized pattern*
of the input matrix, ``|A| + |A|ᵀ + I`` (the paper, Section VI-B).  This
module provides that symmetrization plus the small amount of graph machinery
the orderings need: adjacency lists, connectivity, BFS level structures and
pseudo-peripheral vertices.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "symmetrized_pattern",
    "adjacency_lists",
    "connected_components",
    "bfs_levels",
    "pseudo_peripheral_vertex",
]


def symmetrized_pattern(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Structural symmetrization ``|A| + |A|ᵀ + I`` (pattern only, values 1).

    The returned CSR matrix has a full diagonal and a symmetric pattern; the
    numerical values are all 1 since only the structure matters for orderings
    and symbolic factorization.
    """
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise ValueError("matrix must be square")
    # Build the pattern from the *stored* structure (coo.row/coo.col), not
    # from matrix.nonzero(): the latter drops explicitly stored zeros, whose
    # coordinates then disagree with matrix.nnz and crash the constructor.
    # Matrices loaded from Matrix Market files routinely carry such entries.
    coo = sp.coo_matrix(matrix)
    pattern = sp.csr_matrix(
        (np.ones(coo.row.size), (coo.row, coo.col)), shape=matrix.shape
    )
    sym = pattern + pattern.T + sp.identity(n, format="csr")
    sym.data[:] = 1.0
    sym.sum_duplicates()
    return sp.csr_matrix(sym)


def adjacency_lists(pattern: sp.spmatrix) -> List[np.ndarray]:
    """Adjacency lists (excluding self loops) of a symmetric pattern."""
    csr = sp.csr_matrix(pattern)
    n = csr.shape[0]
    out: List[np.ndarray] = []
    indptr, indices = csr.indptr, csr.indices
    for v in range(n):
        nbrs = indices[indptr[v] : indptr[v + 1]]
        out.append(nbrs[nbrs != v].copy())
    return out

def connected_components(adjacency: Sequence[np.ndarray]) -> List[List[int]]:
    """Connected components of an adjacency-list graph (BFS)."""
    n = len(adjacency)
    seen = np.zeros(n, dtype=bool)
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        comp = [start]
        seen[start] = True
        queue: deque = deque([start])
        while queue:
            v = queue.popleft()
            for w in adjacency[v]:
                if not seen[w]:
                    seen[w] = True
                    comp.append(int(w))
                    queue.append(int(w))
        components.append(comp)
    return components


def bfs_levels(
    adjacency: Sequence[np.ndarray], start: int, allowed: Optional[np.ndarray] = None
) -> List[List[int]]:
    """BFS level structure rooted at ``start``.

    ``allowed`` is an optional boolean mask restricting the traversal to a
    vertex subset (used by nested dissection on sub-graphs).
    """
    n = len(adjacency)
    if allowed is None:
        allowed = np.ones(n, dtype=bool)
    seen = np.zeros(n, dtype=bool)
    seen[start] = True
    levels: List[List[int]] = [[start]]
    frontier = [start]
    while frontier:
        nxt: List[int] = []
        for v in frontier:
            for w in adjacency[v]:
                if allowed[w] and not seen[w]:
                    seen[w] = True
                    nxt.append(int(w))
        if nxt:
            levels.append(nxt)
        frontier = nxt
    return levels


def pseudo_peripheral_vertex(
    adjacency: Sequence[np.ndarray],
    vertices: Sequence[int],
    allowed: Optional[np.ndarray] = None,
) -> Tuple[int, List[List[int]]]:
    """A pseudo-peripheral vertex of the (sub)graph and its level structure.

    Implements the George--Liu heuristic: start from an arbitrary vertex,
    repeatedly move to a vertex of the last BFS level until the eccentricity
    stops growing.  Used both by RCM and by the nested-dissection separator.
    """
    vertices = list(vertices)
    if not vertices:
        raise ValueError("empty vertex set")
    if allowed is None:
        allowed = np.zeros(len(adjacency), dtype=bool)
        allowed[np.asarray(vertices, dtype=int)] = True
    current = vertices[0]
    levels = bfs_levels(adjacency, current, allowed)
    while True:
        last_level = levels[-1]
        candidate = min(last_level, key=lambda v: len(adjacency[v]))
        new_levels = bfs_levels(adjacency, candidate, allowed)
        if len(new_levels) > len(levels):
            current, levels = candidate, new_levels
        else:
            return current, levels
    return current, levels
