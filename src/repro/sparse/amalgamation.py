"""Node amalgamation: from elimination trees to assembly trees.

The elimination tree has one vertex per matrix column, which gives frontal
matrices of order one -- too small for efficient dense kernels.  Sparse
solvers therefore *amalgamate* (merge) tree vertices into supernodes, building
the assembly tree.  Following Section VI-B of the paper, two mechanisms are
implemented:

* **perfect amalgamation** -- a vertex that is the only child of its parent
  and whose column has exactly one more nonzero than the parent's column is
  merged with it (no fill is created);
* **relaxed amalgamation** -- every supernode may additionally absorb up to
  ``relaxed`` of its densest children (possibly creating logical zeros), the
  knob the paper sets to 1, 2, 4 and 16 to enlarge its data set.

The resulting supernodes are weighted exactly as in the paper: a supernode
that amalgamates ``eta`` columns and whose topmost column has ``mu`` nonzeros
in ``L`` gets an execution weight ``eta**2 + 2*eta*(mu - 1)`` (the frontal
matrix minus its contribution block) and an edge weight ``(mu - 1)**2`` (the
contribution block sent to its parent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .etree import _check_engine, etree_children

__all__ = ["Supernode", "AmalgamatedTree", "amalgamate"]


@dataclass(frozen=True)
class Supernode:
    """One assembly-tree node.

    Attributes
    ----------
    index:
        Identifier of the supernode in the amalgamated tree.
    members:
        Original elimination-tree columns merged into this supernode.
    representative:
        The topmost member (the one closest to the root of the elimination
        tree); its column count is the ``mu`` of the paper's weights.
    eta:
        Number of amalgamated columns (``len(members)``).
    mu:
        Column count of the representative column.
    """

    index: int
    members: Tuple[int, ...]
    representative: int
    eta: int
    mu: int

    @property
    def node_weight(self) -> float:
        """Execution-file weight ``eta^2 + 2 eta (mu - 1)``."""
        return float(self.eta**2 + 2 * self.eta * (self.mu - 1))

    @property
    def edge_weight(self) -> float:
        """Contribution-block weight ``(mu - 1)^2`` sent to the parent."""
        return float((self.mu - 1) ** 2)

    @property
    def front_order(self) -> int:
        """Order of the frontal matrix, ``eta + (mu - 1)``."""
        return self.eta + self.mu - 1


@dataclass(frozen=True)
class AmalgamatedTree:
    """Assembly tree produced by :func:`amalgamate`.

    ``parent[s]`` is the parent supernode of ``s`` (or ``-1``), and
    ``column_to_supernode[j]`` maps every original column to its supernode.
    """

    supernodes: Tuple[Supernode, ...]
    parent: np.ndarray
    column_to_supernode: np.ndarray

    @property
    def size(self) -> int:
        return len(self.supernodes)

    def children(self) -> List[List[int]]:
        """Children lists of the assembly tree."""
        out: List[List[int]] = [[] for _ in range(self.size)]
        for s, p in enumerate(self.parent):
            if p >= 0:
                out[p].append(s)
        return out


def _reference_perfect_leaders(
    parent: np.ndarray, counts: np.ndarray, perfect: bool
) -> np.ndarray:
    """Topmost column of every perfect-amalgamation chain (union-find oracle)."""
    n = parent.size
    children = etree_children(parent)

    # union-find over columns; the set representative is the topmost column
    leader = np.arange(n, dtype=np.int64)

    def find(v: int) -> int:
        root = v
        while leader[root] != root:
            root = leader[root]
        while leader[v] != root:
            leader[v], v = root, int(leader[v])
        return int(root)

    if perfect:
        for v in range(n):
            p = int(parent[v])
            if p < 0:
                continue
            if len(children[p]) == 1 and counts[p] == counts[v] - 1:
                leader[find(v)] = find(p)
    return np.asarray([find(v) for v in range(n)], dtype=np.int64)


def _kernel_perfect_leaders(
    parent: np.ndarray, counts: np.ndarray, perfect: bool
) -> np.ndarray:
    """Vectorized perfect-amalgamation chains via pointer doubling.

    A column merges with its parent exactly when it is the parent's only
    child and the parent's count is one smaller (no fill).  Those merges form
    parent-chains, so the set representative of ``v`` is the topmost vertex
    reachable through consecutively mergeable edges -- resolved by doubling
    the merge-edge pointer, no per-column union-find.
    """
    n = parent.size
    leader = np.arange(n, dtype=np.int64)
    if not perfect or n == 0:
        return leader
    safe_parent = np.clip(parent, 0, None)
    child_count = np.bincount(parent[parent >= 0], minlength=n)
    merge_up = (
        (parent >= 0)
        & (child_count[safe_parent] == 1)
        & (counts[safe_parent] == counts - 1)
    )
    leader = np.where(merge_up, safe_parent, leader)
    while True:
        nxt = leader[leader]
        if np.array_equal(nxt, leader):
            return leader
        leader = nxt


def amalgamate(
    parent: Sequence[int],
    counts: Sequence[int],
    *,
    relaxed: int = 1,
    perfect: bool = True,
    engine: str = "kernel",
) -> AmalgamatedTree:
    """Amalgamate an elimination tree into an assembly tree.

    Parameters
    ----------
    parent:
        Elimination-tree parent array (``-1`` for roots).
    counts:
        Column counts ``mu_j`` of the Cholesky factor (diagonal included).
    relaxed:
        Maximum number of relaxed (non-perfect) child absorptions per
        supernode; ``0`` disables relaxed amalgamation.
    perfect:
        Whether to perform perfect amalgamation first (the paper always
        does).
    engine:
        ``"kernel"`` (default) resolves the perfect-amalgamation chains with
        vectorized pointer doubling; ``"reference"`` is the original
        per-column union-find.  Both produce identical supernodes (the
        relaxed phase is shared and order-independent).

    Returns
    -------
    AmalgamatedTree
        Supernodes with paper-compatible weights and the quotient tree.
    """
    _check_engine(engine)
    parent = np.asarray(parent, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    n = parent.size
    if counts.size != n:
        raise ValueError("parent and counts must have the same length")
    if engine == "reference":
        leader = _reference_perfect_leaders(parent, counts, perfect)
    else:
        leader = _kernel_perfect_leaders(parent, counts, perfect)

    # ------------------------------------------------------------------
    # build the quotient (perfectly amalgamated) tree
    # ------------------------------------------------------------------
    groups: Dict[int, List[int]] = {}
    for v, rep in enumerate(leader.tolist()):
        groups.setdefault(rep, []).append(v)

    def quotient_parent(rep: int) -> int:
        top = max(groups[rep])  # topmost member: largest column index
        p = int(parent[top])
        return -1 if p < 0 else int(leader[p])

    # ------------------------------------------------------------------
    # relaxed amalgamation on the quotient tree (top-down, densest child)
    # ------------------------------------------------------------------
    if relaxed > 0:
        qparent: Dict[int, int] = {rep: quotient_parent(rep) for rep in groups}
        qchildren: Dict[int, List[int]] = {rep: [] for rep in groups}
        for rep, qp in qparent.items():
            if qp >= 0:
                qchildren[qp].append(rep)
        roots = [rep for rep, qp in qparent.items() if qp < 0]
        # top-down sweep: absorb densest children while the budget allows
        stack = list(roots)
        budget = {rep: relaxed for rep in groups}
        while stack:
            rep = stack.pop()
            while budget[rep] > 0 and qchildren[rep]:
                densest = max(
                    qchildren[rep], key=lambda c: (int(counts[max(groups[c])]), c)
                )
                qchildren[rep].remove(densest)
                # merge `densest` into `rep`
                groups[rep].extend(groups[densest])
                for grandchild in qchildren.pop(densest):
                    qparent[grandchild] = rep
                    qchildren[rep].append(grandchild)
                del groups[densest]
                del qparent[densest]
                budget[rep] -= 1
            stack.extend(qchildren[rep])
        final_groups = groups
        final_parent_of = qparent
    else:
        final_groups = groups
        final_parent_of = {rep: quotient_parent(rep) for rep in groups}

    # ------------------------------------------------------------------
    # materialise supernodes with the paper's weights
    # ------------------------------------------------------------------
    reps = sorted(final_groups)
    index_of = {rep: i for i, rep in enumerate(reps)}
    supernodes: List[Supernode] = []
    column_to_supernode = np.empty(n, dtype=np.int64)
    for rep in reps:
        members = tuple(sorted(final_groups[rep]))
        top = members[-1]
        sn = Supernode(
            index=index_of[rep],
            members=members,
            representative=int(top),
            eta=len(members),
            mu=int(counts[top]),
        )
        supernodes.append(sn)
        for m in members:
            column_to_supernode[m] = sn.index

    sn_parent = np.full(len(reps), -1, dtype=np.int64)
    for rep in reps:
        qp = final_parent_of[rep]
        if qp >= 0:
            sn_parent[index_of[rep]] = index_of[qp]

    return AmalgamatedTree(
        supernodes=tuple(supernodes),
        parent=sn_parent,
        column_to_supernode=column_to_supernode,
    )
