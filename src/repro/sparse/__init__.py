"""Sparse-matrix substrate: from matrices to weighted assembly trees.

This package builds everything the paper's experiments need upstream of the
traversal algorithms: synthetic SPD matrices, fill-reducing orderings,
elimination trees, symbolic factorization, supernode amalgamation with the
paper's weights, a multifrontal Cholesky engine, and Matrix Market I/O.
"""

from .amalgamation import AmalgamatedTree, Supernode, amalgamate
from .assembly import AssemblyTreeResult, assembly_tree_from_etree, build_assembly_tree
from .etree import (
    elimination_tree,
    etree_children,
    etree_heights,
    etree_levels,
    etree_postorder,
    etree_to_task_tree,
)
from .graph import symmetrized_pattern
from .matrices import (
    anisotropic_laplacian_2d,
    banded_spd,
    graph_laplacian,
    grid_laplacian_2d,
    grid_laplacian_3d,
    is_symmetric,
    make_spd,
    random_spd,
)
from .mmio import read_matrix_market, write_matrix_market
from .multifrontal import MultifrontalResult, frontal_memory_tree, multifrontal_cholesky
from .ordering import (
    ORDERINGS,
    apply_ordering,
    minimum_degree_ordering,
    natural_ordering,
    nested_dissection_ordering,
    permutation_matrix,
    rcm_ordering,
)
from .symbolic import SymbolicStats, column_counts, column_patterns, symbolic_stats

__all__ = [
    "AmalgamatedTree",
    "Supernode",
    "amalgamate",
    "AssemblyTreeResult",
    "build_assembly_tree",
    "assembly_tree_from_etree",
    "elimination_tree",
    "etree_children",
    "etree_heights",
    "etree_levels",
    "etree_postorder",
    "etree_to_task_tree",
    "symmetrized_pattern",
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "anisotropic_laplacian_2d",
    "random_spd",
    "banded_spd",
    "graph_laplacian",
    "is_symmetric",
    "make_spd",
    "read_matrix_market",
    "write_matrix_market",
    "MultifrontalResult",
    "multifrontal_cholesky",
    "frontal_memory_tree",
    "ORDERINGS",
    "natural_ordering",
    "rcm_ordering",
    "minimum_degree_ordering",
    "nested_dissection_ordering",
    "apply_ordering",
    "permutation_matrix",
    "SymbolicStats",
    "column_counts",
    "column_patterns",
    "symbolic_stats",
]
