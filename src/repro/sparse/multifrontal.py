"""A multifrontal Cholesky factorization engine.

This is the motivating application of the paper (Section II-A): the numeric
factorization of a sparse SPD matrix organised as a bottom-up traversal of
its elimination tree.  Every column ``j`` owns a dense *frontal matrix* whose
rows are ``{j} ∪ pattern(L_{*j})``; processing a column

1. assembles the original entries of column ``j`` and the *contribution
   blocks* produced by its children (extend-add),
2. eliminates the pivot, producing column ``j`` of ``L``,
3. produces its own contribution block, kept in memory until the parent is
   processed.

The engine accepts any bottom-up topological traversal (not only postorders),
which is exactly the freedom the paper exploits: the amount of memory used by
the contribution blocks depends on the traversal.  The peak of
``frontal matrix + resident contribution blocks`` is reported so that the
library's task-tree model can be compared against a real factorization, and
the computed factor is returned for verification (``L Lᵀ = A``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.traversal import BOTTOMUP, Traversal
from .etree import elimination_tree, etree_postorder
from .symbolic import column_patterns

__all__ = ["MultifrontalResult", "multifrontal_cholesky", "frontal_memory_tree"]


@dataclass(frozen=True)
class MultifrontalResult:
    """Result of a multifrontal factorization.

    Attributes
    ----------
    factor:
        The lower-triangular Cholesky factor as a CSC matrix.
    peak_memory:
        Peak number of matrix entries simultaneously held by the engine
        (active frontal matrix plus all resident contribution blocks).
    total_cb_volume:
        Total number of entries of all contribution blocks ever produced
        (the volume that would transit through the stack / secondary memory).
    traversal:
        The bottom-up column traversal that was used.
    """

    factor: sp.csc_matrix
    peak_memory: float
    total_cb_volume: float
    traversal: Traversal


def multifrontal_cholesky(
    matrix: sp.spmatrix,
    traversal: Optional[Traversal] = None,
    *,
    check_spd: bool = True,
) -> MultifrontalResult:
    """Factor an SPD matrix with the multifrontal method.

    Parameters
    ----------
    matrix:
        Sparse symmetric positive definite matrix (already permuted by a
        fill-reducing ordering if desired).
    traversal:
        Optional bottom-up traversal of the elimination-tree columns.  The
        default is an elimination-tree postorder.  A top-down traversal is
        reversed automatically.
    check_spd:
        Raise :class:`ValueError` when a non-positive pivot appears.

    Returns
    -------
    MultifrontalResult
        Factor, memory statistics and the traversal used.
    """
    a = sp.csc_matrix(matrix)
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    parent = elimination_tree(a)
    patterns = column_patterns(a, parent)

    if traversal is None:
        order = [int(j) for j in etree_postorder(parent)]
    else:
        order = [int(j) for j in traversal.as_convention(BOTTOMUP).order]
        if sorted(order) != list(range(n)):
            raise ValueError("traversal must cover every column exactly once")

    # map column -> position of each row in its frontal matrix
    lower = sp.tril(a).tocsc()
    factor_cols: List[np.ndarray] = [np.empty(0)] * n
    contribution: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    children_done: Dict[int, List[int]] = {j: [] for j in range(n)}

    peak = 0.0
    resident_cb = 0.0
    total_cb = 0.0

    for j in order:
        rows = np.concatenate(([j], patterns[j])).astype(np.int64)
        size = rows.size
        front = np.zeros((size, size))
        row_pos = {int(r): k for k, r in enumerate(rows)}

        # the frontal matrix coexists with every resident contribution block
        # (including those of the children, consumed by the extend-add below)
        peak = max(peak, resident_cb + front.size)

        # original entries of column j (lower triangle)
        start, end = lower.indptr[j], lower.indptr[j + 1]
        for r, val in zip(lower.indices[start:end], lower.data[start:end]):
            front[row_pos[int(r)], 0] += val

        # extend-add the children contribution blocks
        for child in children_done[j]:
            cb_rows, cb = contribution.pop(child)
            resident_cb -= cb.size
            idx = np.asarray([row_pos[int(r)] for r in cb_rows], dtype=np.int64)
            front[np.ix_(idx, idx)] += cb

        pivot = front[0, 0]
        if pivot <= 0:
            if check_spd:
                raise ValueError(f"non-positive pivot at column {j}: {pivot}")
            pivot = abs(pivot) or 1.0
        ljj = np.sqrt(pivot)
        col = front[:, 0] / ljj
        col[0] = ljj
        factor_cols[j] = col

        if size > 1:
            cb = front[1:, 1:] - np.outer(col[1:], col[1:])
            contribution[j] = (rows[1:], cb)
            resident_cb += cb.size
            total_cb += cb.size
            peak = max(peak, resident_cb)
        p = int(parent[j])
        if p >= 0:
            children_done[p].append(j)

    # assemble L
    data: List[float] = []
    row_idx: List[int] = []
    col_idx: List[int] = []
    for j in range(n):
        rows = np.concatenate(([j], patterns[j])).astype(np.int64)
        col = factor_cols[j]
        data.extend(col.tolist())
        row_idx.extend(rows.tolist())
        col_idx.extend([j] * rows.size)
    factor = sp.csc_matrix((data, (row_idx, col_idx)), shape=(n, n))

    used = Traversal(tuple(order), BOTTOMUP)
    return MultifrontalResult(
        factor=factor,
        peak_memory=peak,
        total_cb_volume=total_cb,
        traversal=used,
    )


def frontal_memory_tree(matrix: sp.spmatrix) -> "Tree":
    """Column-level task tree whose weights mirror the multifrontal engine.

    Every elimination-tree column ``j`` becomes a task with an edge weight
    equal to the size of its contribution block, ``(|pattern(j)|)^2``, and an
    execution weight equal to the rest of its frontal matrix,
    ``front^2 - cb^2``.  The MinMemory value of this tree is directly
    comparable to the ``peak_memory`` reported by
    :func:`multifrontal_cholesky` for the same traversal.
    """
    from ..core.tree import Tree
    from .etree import etree_to_task_tree

    a = sp.csc_matrix(matrix)
    parent = elimination_tree(a)
    patterns = column_patterns(a, parent)
    n = a.shape[0]
    f = []
    nw = []
    for j in range(n):
        cb = len(patterns[j]) ** 2
        front = (len(patterns[j]) + 1) ** 2
        is_root = parent[j] < 0
        f.append(0.0 if is_root else float(cb))
        nw.append(float(front - cb) if not is_root else float(front))
    return etree_to_task_tree(parent, f=f, n_weights=nw)
