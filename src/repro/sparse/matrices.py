"""Synthetic sparse symmetric positive definite matrix generators.

The paper evaluates its algorithms on assembly trees built from 291 matrices
of the University of Florida Sparse Matrix Collection.  That collection is not
redistributable inside this repository, so the experiment harness substitutes
a deterministic synthetic suite that spans the same qualitative structures:

* :func:`grid_laplacian_2d` / :func:`grid_laplacian_3d` -- discretised
  Laplacians on regular meshes (5-point / 7-point / 9-point stencils), the
  typical "PDE" matrices of the collection;
* :func:`anisotropic_laplacian_2d` -- stretched stencils producing elongated
  elimination trees;
* :func:`random_spd` -- random sparse SPD matrices ``B Bᵀ + αI`` with
  unstructured patterns;
* :func:`graph_laplacian` -- Laplacians of Watts--Strogatz, Barabási--Albert
  and random geometric graphs (via ``networkx``), covering small-world and
  power-law patterns;
* :func:`banded_spd` -- band matrices whose elimination trees are chains.

All generators return ``scipy.sparse.csc_matrix`` and are deterministic for a
given ``seed``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

__all__ = [
    "grid_laplacian_2d",
    "grid_laplacian_3d",
    "anisotropic_laplacian_2d",
    "random_spd",
    "banded_spd",
    "graph_laplacian",
    "is_symmetric",
    "make_spd",
]


def _to_csc(matrix: sp.spmatrix) -> sp.csc_matrix:
    out = sp.csc_matrix(matrix)
    out.sum_duplicates()
    out.eliminate_zeros()
    return out


def is_symmetric(matrix: sp.spmatrix, tol: float = 1e-12) -> bool:
    """True when the matrix equals its transpose up to ``tol``."""
    diff = (matrix - matrix.T).tocoo()
    if diff.nnz == 0:
        return True
    return float(np.max(np.abs(diff.data))) <= tol


def make_spd(matrix: sp.spmatrix, shift: Optional[float] = None) -> sp.csc_matrix:
    """Shift a symmetric matrix to make it (strictly) diagonally dominant SPD.

    Each diagonal entry is raised to the sum of the absolute off-diagonal
    entries of its row plus ``shift`` (default 1), which guarantees positive
    definiteness without changing the sparsity pattern outside the diagonal.
    """
    matrix = _to_csc(matrix)
    if shift is None:
        shift = 1.0
    abs_row_sum = np.asarray(np.abs(matrix).sum(axis=1)).ravel()
    diagonal = matrix.diagonal()
    boost = abs_row_sum - np.abs(diagonal) + shift
    return _to_csc(matrix + sp.diags(boost - diagonal + np.abs(diagonal)))


def grid_laplacian_2d(nx: int, ny: Optional[int] = None, stencil: int = 5) -> sp.csc_matrix:
    """Laplacian of an ``nx x ny`` grid (5-point or 9-point stencil).

    The returned matrix is symmetric positive definite (the standard
    ``4I - shifts`` stencil plus a unit diagonal shift).
    """
    if ny is None:
        ny = nx
    if stencil not in (5, 9):
        raise ValueError("stencil must be 5 or 9")
    idx = np.arange(nx * ny).reshape(nx, ny)
    rows, cols, vals = [], [], []

    def add(a: np.ndarray, b: np.ndarray, value: float) -> None:
        # flat array chunks, concatenated once below: the entry lists of a
        # 250k-row grid never pass through per-element Python iteration
        a, b = a.ravel(), b.ravel()
        rows.extend((a, b))
        cols.extend((b, a))
        vals.append(np.full(2 * a.size, value))

    add(idx[:-1, :], idx[1:, :], -1.0)
    add(idx[:, :-1], idx[:, 1:], -1.0)
    if stencil == 9:
        add(idx[:-1, :-1], idx[1:, 1:], -0.5)
        add(idx[:-1, 1:], idx[1:, :-1], -0.5)
    n = nx * ny
    off = sp.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    )
    degree = -np.asarray(off.sum(axis=1)).ravel()
    return _to_csc(off + sp.diags(degree + 1.0))


def grid_laplacian_3d(nx: int, ny: Optional[int] = None, nz: Optional[int] = None) -> sp.csc_matrix:
    """7-point Laplacian of an ``nx x ny x nz`` grid (SPD)."""
    if ny is None:
        ny = nx
    if nz is None:
        nz = nx
    idx = np.arange(nx * ny * nz).reshape(nx, ny, nz)
    rows, cols = [], []

    def add(a: np.ndarray, b: np.ndarray) -> None:
        a, b = a.ravel(), b.ravel()
        rows.extend((a, b))
        cols.extend((b, a))

    add(idx[:-1, :, :], idx[1:, :, :])
    add(idx[:, :-1, :], idx[:, 1:, :])
    add(idx[:, :, :-1], idx[:, :, 1:])
    n = nx * ny * nz
    rows_flat = np.concatenate(rows)
    off = sp.coo_matrix(
        (-np.ones(rows_flat.size), (rows_flat, np.concatenate(cols))), shape=(n, n)
    )
    degree = -np.asarray(off.sum(axis=1)).ravel()
    return _to_csc(off + sp.diags(degree + 1.0))


def anisotropic_laplacian_2d(nx: int, ny: Optional[int] = None, ratio: float = 100.0) -> sp.csc_matrix:
    """2-D Laplacian with anisotropic coefficients (SPD).

    A large ``ratio`` strongly couples one direction, which steers most
    orderings towards band-like structures and deep elimination trees.
    """
    if ny is None:
        ny = nx
    idx = np.arange(nx * ny).reshape(nx, ny)
    rows, cols, vals = [], [], []

    def add(a: np.ndarray, b: np.ndarray, value: float) -> None:
        a, b = a.ravel(), b.ravel()
        rows.extend((a, b))
        cols.extend((b, a))
        vals.append(np.full(2 * a.size, value))

    add(idx[:-1, :], idx[1:, :], -1.0)
    add(idx[:, :-1], idx[:, 1:], -float(ratio))
    n = nx * ny
    off = sp.coo_matrix(
        (np.concatenate(vals), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n),
    )
    degree = -np.asarray(off.sum(axis=1)).ravel()
    return _to_csc(off + sp.diags(degree + 1.0))


def banded_spd(n: int, bandwidth: int = 3, seed: int = 0) -> sp.csc_matrix:
    """Random SPD band matrix with the given half-bandwidth."""
    rng = np.random.default_rng(seed)
    diags = [rng.uniform(0.1, 1.0, n - k) for k in range(1, bandwidth + 1)]
    offsets = list(range(1, bandwidth + 1))
    upper = sp.diags(diags, offsets, shape=(n, n))
    sym = upper + upper.T
    return make_spd(sym)


def random_spd(n: int, density: float = 0.01, seed: int = 0) -> sp.csc_matrix:
    """Random sparse SPD matrix with an unstructured pattern.

    A random sparse matrix ``B`` is symmetrised and shifted to diagonal
    dominance; ``density`` controls the expected off-diagonal fill.
    """
    rng = np.random.default_rng(seed)
    b = sp.random(n, n, density=density, random_state=rng, format="coo")
    sym = b + b.T
    return make_spd(sym)


def graph_laplacian(kind: str, n: int, seed: int = 0, **kwargs) -> sp.csc_matrix:
    """SPD Laplacian of a synthetic ``networkx`` graph.

    Parameters
    ----------
    kind:
        ``"watts_strogatz"``, ``"barabasi_albert"`` or ``"random_geometric"``.
    n:
        Number of vertices.
    seed:
        Random seed (deterministic generation).
    kwargs:
        Extra parameters forwarded to the ``networkx`` generator
        (``k``/``p`` for Watts--Strogatz, ``m`` for Barabási--Albert,
        ``radius`` for random geometric).
    """
    import networkx as nx

    if kind == "watts_strogatz":
        graph = nx.connected_watts_strogatz_graph(
            n, k=kwargs.get("k", 6), p=kwargs.get("p", 0.1), seed=seed
        )
    elif kind == "barabasi_albert":
        graph = nx.barabasi_albert_graph(n, m=kwargs.get("m", 3), seed=seed)
    elif kind == "random_geometric":
        graph = nx.random_geometric_graph(
            n, radius=kwargs.get("radius", (2.0 / max(n, 1)) ** 0.5), seed=seed
        )
    else:
        raise ValueError(f"unknown graph kind {kind!r}")
    lap = nx.laplacian_matrix(graph, nodelist=sorted(graph.nodes())).astype(float)
    return _to_csc(lap + sp.identity(n))
