"""Symbolic Cholesky factorization.

Given the symmetrized pattern of a matrix and its elimination tree, this
module computes

* :func:`column_counts` -- the number of nonzeros of every column of the
  Cholesky factor ``L`` (including the diagonal), the quantity the paper
  calls ``mu`` when weighting assembly-tree nodes;
* :func:`column_patterns` -- the full row pattern of every column of ``L``
  (needed by the multifrontal numeric engine);
* :func:`symbolic_stats` -- aggregate statistics (``nnz(L)``, factorization
  flops) used by the experiment drivers.

The column counts are obtained with the row-subtree algorithm: row ``i`` of
``L`` is the set of columns encountered when climbing the elimination tree
from every ``k`` with ``a_ik != 0, k < i`` up to ``i``; marking visited
vertices per row makes the total work ``O(nnz(L))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .etree import elimination_tree, etree_children, etree_postorder
from .graph import symmetrized_pattern

__all__ = ["column_counts", "column_patterns", "SymbolicStats", "symbolic_stats"]


def column_counts(
    matrix: sp.spmatrix, parent: Optional[Sequence[int]] = None
) -> np.ndarray:
    """Nonzero count of every column of ``L`` (diagonal included).

    Parameters
    ----------
    matrix:
        Square sparse matrix (pattern only is used, symmetrized internally).
    parent:
        Optional precomputed elimination-tree parent array.
    """
    pattern = symmetrized_pattern(matrix)
    n = pattern.shape[0]
    if parent is None:
        parent = elimination_tree(pattern, symmetrize=False)
    counts = np.ones(n, dtype=np.int64)  # the diagonal entries
    marker = np.full(n, -1, dtype=np.int64)
    indptr, indices = pattern.indptr, pattern.indices

    for i in range(n):
        marker[i] = i
        for k in indices[indptr[i] : indptr[i + 1]]:
            k = int(k)
            if k >= i:
                continue
            # climb the row subtree of i
            j = k
            while marker[j] != i:
                counts[j] += 1
                marker[j] = i
                j = int(parent[j])
                if j < 0:
                    break
    return counts


def column_patterns(
    matrix: sp.spmatrix, parent: Optional[Sequence[int]] = None
) -> List[np.ndarray]:
    """Row pattern (strictly below the diagonal) of every column of ``L``.

    The pattern of column ``j`` is the union of the below-diagonal pattern of
    column ``j`` of ``A`` and of the patterns of its elimination-tree
    children, minus the children themselves -- computed bottom-up.  The
    output of column ``j`` is a sorted ``numpy`` array of row indices ``> j``.

    This is quadratic in ``nnz(L)`` in the worst case and is intended for the
    moderate-size matrices used by the multifrontal engine.
    """
    pattern = symmetrized_pattern(matrix)
    n = pattern.shape[0]
    if parent is None:
        parent = elimination_tree(pattern, symmetrize=False)
    children = etree_children(parent)
    csc = sp.csc_matrix(pattern)
    patterns: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * n

    for j in etree_postorder(parent):
        j = int(j)
        rows = csc.indices[csc.indptr[j] : csc.indptr[j + 1]]
        below = set(int(r) for r in rows if r > j)
        for child in children[j]:
            below.update(int(r) for r in patterns[child] if r > j)
        patterns[j] = np.asarray(sorted(below), dtype=np.int64)
    return patterns


@dataclass(frozen=True)
class SymbolicStats:
    """Aggregate results of the symbolic factorization."""

    n: int
    nnz_a: int
    nnz_l: int
    flops: float
    max_column_count: int

    @property
    def fill_ratio(self) -> float:
        """``nnz(L) / nnz(tril(A))`` -- the fill-in factor."""
        return self.nnz_l / max(self.nnz_a, 1)


def symbolic_stats(
    matrix: sp.spmatrix, parent: Optional[Sequence[int]] = None
) -> SymbolicStats:
    """Size, fill and flop statistics of the Cholesky factorization."""
    pattern = symmetrized_pattern(matrix)
    n = pattern.shape[0]
    counts = column_counts(pattern, parent)
    nnz_lower_a = int((pattern.nnz + n) // 2)
    flops = float(np.sum(counts.astype(np.float64) ** 2))
    return SymbolicStats(
        n=n,
        nnz_a=nnz_lower_a,
        nnz_l=int(np.sum(counts)),
        flops=flops,
        max_column_count=int(np.max(counts)) if n else 0,
    )
