"""Symbolic Cholesky factorization.

Given the symmetrized pattern of a matrix and its elimination tree, this
module computes

* :func:`column_counts` -- the number of nonzeros of every column of the
  Cholesky factor ``L`` (including the diagonal), the quantity the paper
  calls ``mu`` when weighting assembly-tree nodes;
* :func:`column_patterns` -- the full row pattern of every column of ``L``
  (needed by the multifrontal numeric engine);
* :func:`symbolic_stats` -- aggregate statistics (``nnz(L)``, factorization
  flops) used by the experiment drivers.

Both entry points follow the ``engine="kernel"|"reference"`` convention of
:mod:`repro.core.kernel`; the reference implementations are the original
per-entry loops, kept verbatim as the test oracle.

The reference ``column_counts`` uses the row-subtree algorithm: row ``i`` of
``L`` is the set of columns encountered when climbing the elimination tree
from every ``k`` with ``a_ik != 0, k < i`` up to ``i``; marking visited
vertices per row makes the total work ``O(nnz(L))``.  The kernel engine is
the Gilbert--Ng--Peyton formulation of the same quantity: row subtrees are
never walked -- each one is summarised by its entries sorted in postorder,
whose consecutive lowest common ancestors delimit the overlaps between the
climbed paths (the non-skeleton entries cancel out of the telescoped sum).
The per-path increments become ±1 deltas on path endpoints, accumulated for
all rows at once and resolved by one prefix sum over the postordered tree,
so the total Python work is a handful of numpy calls regardless of
``nnz(L)``.

The reference ``column_patterns`` merges Python sets bottom-up; the kernel
engine allocates the CSC structure of ``L`` up front (sizes are exactly the
column counts) and fills it with sorted-array merges -- each child pattern
is consumed by exactly one parent, so the merged volume is ``O(nnz(L))``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from .etree import (
    _ancestor_table,
    _check_engine,
    _children_csr,
    _first_descendants,
    _lca_batch,
    _lower_coo,
    _postorder_flat,
    elimination_tree,
    etree_children,
    etree_levels,
    etree_postorder,
)
from .graph import symmetrized_pattern

__all__ = ["column_counts", "column_patterns", "SymbolicStats", "symbolic_stats"]


def column_counts(
    matrix: sp.spmatrix,
    parent: Optional[Sequence[int]] = None,
    *,
    engine: str = "kernel",
    symmetrize: bool = True,
) -> np.ndarray:
    """Nonzero count of every column of ``L`` (diagonal included).

    Parameters
    ----------
    matrix:
        Square sparse matrix (pattern only is used, symmetrized internally).
    parent:
        Optional precomputed elimination-tree parent array.
    engine:
        ``"kernel"`` (default) is the vectorized Gilbert--Ng--Peyton
        row-subtree algorithm; ``"reference"`` the original per-entry climb.
        Both return identical counts.
    symmetrize:
        Set to False only when ``matrix`` already is a symmetrized pattern
        (structurally symmetric with a full diagonal, as produced by
        :func:`~repro.sparse.graph.symmetrized_pattern`): skips the
        ``O(nnz)`` re-symmetrization passes on the pipeline hot path.
    """
    _check_engine(engine)
    pattern = symmetrized_pattern(matrix) if symmetrize else sp.csr_matrix(matrix)
    if parent is None:
        parent = elimination_tree(pattern, symmetrize=False, engine=engine)
    parent = np.asarray(parent, dtype=np.int64)
    if engine == "reference":
        return _reference_column_counts(pattern, parent)
    return _kernel_column_counts(pattern, parent)


def _reference_column_counts(
    pattern: sp.csr_matrix, parent: np.ndarray
) -> np.ndarray:
    """Per-entry row-subtree climb (the test oracle)."""
    n = pattern.shape[0]
    counts = np.ones(n, dtype=np.int64)  # the diagonal entries
    marker = np.full(n, -1, dtype=np.int64)
    indptr, indices = pattern.indptr, pattern.indices

    for i in range(n):
        marker[i] = i
        for k in indices[indptr[i] : indptr[i + 1]]:
            k = int(k)
            if k >= i:
                continue
            # climb the row subtree of i
            j = k
            while marker[j] != i:
                counts[j] += 1
                marker[j] = i
                j = int(parent[j])
                if j < 0:
                    break
    return counts


def _kernel_column_counts(pattern: sp.csr_matrix, parent: np.ndarray) -> np.ndarray:
    """Vectorized Gilbert--Ng--Peyton column counts.

    ``counts[j] - 1`` is the number of rows ``i > j`` whose row subtree
    contains ``j``, i.e. the number of half-open etree paths ``[k, i)``
    (one per strictly-lower entry ``a_ik``) covering ``j``, with overlaps
    between paths of the same row removed.  Sorting each row's entries by
    postorder position turns the union into a telescoped sum: add the path
    ``[k_t, i)`` for every entry, subtract ``[lca(k_t, k_{t+1}), i)`` for
    every consecutive pair.  A path ``[a, b)`` adds 1 to ``delta[a]`` and
    -1 to ``delta[b]``, and the per-column coverage is the subtree sum of
    ``delta`` -- a prefix sum over the postorder, where every subtree is one
    contiguous segment.
    """
    n = pattern.shape[0]
    counts = np.ones(n, dtype=np.int64)
    if n == 0:
        return counts
    rows, cols = _lower_coo(pattern)
    if rows.size == 0:
        return counts
    post = np.empty(n, dtype=np.int64)
    inv_post = _postorder_flat(parent)
    post[inv_post] = np.arange(n, dtype=np.int64)
    levels = etree_levels(parent)

    order = np.lexsort((post[cols], rows))
    rows, cols = rows[order], cols[order]
    delta = np.zeros(n, dtype=np.int64)
    np.add.at(delta, cols, 1)
    np.subtract.at(delta, rows, 1)
    same_row = rows[1:] == rows[:-1]
    if same_row.any():
        up = _ancestor_table(parent, levels)
        overlap = _lca_batch(up, levels, cols[:-1][same_row], cols[1:][same_row])
        np.subtract.at(delta, overlap, 1)
        np.add.at(delta, rows[1:][same_row], 1)

    first = _first_descendants(parent, post)
    prefix = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(delta[inv_post], out=prefix[1:])
    counts += prefix[post + 1] - prefix[first]
    return counts


def column_patterns(
    matrix: sp.spmatrix,
    parent: Optional[Sequence[int]] = None,
    *,
    engine: str = "kernel",
    symmetrize: bool = True,
) -> List[np.ndarray]:
    """Row pattern (strictly below the diagonal) of every column of ``L``.

    The pattern of column ``j`` is the union of the below-diagonal pattern of
    column ``j`` of ``A`` and of the patterns of its elimination-tree
    children, minus the children themselves -- computed bottom-up.  The
    output of column ``j`` is a sorted ``numpy`` array of row indices ``> j``.

    With ``engine="kernel"`` (default) the CSC structure of ``L`` is
    allocated up front from the column counts and filled with sorted-array
    merges (each returned pattern is a view into one shared buffer);
    ``engine="reference"`` is the original Python set merging.  Both return
    identical patterns.  ``symmetrize=False`` declares that ``matrix``
    already is a symmetrized pattern (see :func:`column_counts`).
    """
    _check_engine(engine)
    pattern = symmetrized_pattern(matrix) if symmetrize else sp.csr_matrix(matrix)
    if parent is None:
        parent = elimination_tree(pattern, symmetrize=False, engine=engine)
    parent = np.asarray(parent, dtype=np.int64)
    if engine == "reference":
        return _reference_column_patterns(pattern, parent)
    return _kernel_column_patterns(pattern, parent)


def _reference_column_patterns(
    pattern: sp.csr_matrix, parent: np.ndarray
) -> List[np.ndarray]:
    """Bottom-up Python set merging (the test oracle)."""
    n = pattern.shape[0]
    children = etree_children(parent)
    csc = sp.csc_matrix(pattern)
    patterns: List[np.ndarray] = [np.empty(0, dtype=np.int64)] * n

    for j in etree_postorder(parent):
        j = int(j)
        rows = csc.indices[csc.indptr[j] : csc.indptr[j + 1]]
        below = set(int(r) for r in rows if r > j)
        for child in children[j]:
            below.update(int(r) for r in patterns[child] if r > j)
        patterns[j] = np.asarray(sorted(below), dtype=np.int64)
    return patterns


def _kernel_column_patterns(
    pattern: sp.csr_matrix, parent: np.ndarray
) -> List[np.ndarray]:
    """CSC-structured bottom-up merges on flat arrays (no Python sets)."""
    n = pattern.shape[0]
    counts = _kernel_column_counts(pattern, parent)
    indptr_l = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts - 1, out=indptr_l[1:])
    buffer = np.empty(int(indptr_l[-1]), dtype=np.int64)

    csc = sp.csc_matrix(pattern)
    csc.sort_indices()
    a_indptr = csc.indptr
    a_indices = csc.indices.astype(np.int64, copy=False)
    child_ptr, child_idx, _ = _children_csr(parent)

    patterns: List[np.ndarray] = [buffer[:0]] * n
    # children precede parents in column order, so a plain ascending sweep
    # is bottom-up; each child pattern is merged into exactly one parent
    for j in range(n):
        rows = a_indices[a_indptr[j] : a_indptr[j + 1]]
        pieces = [rows[rows > j]]
        for c in child_idx[child_ptr[j] : child_ptr[j + 1]]:
            child_pattern = patterns[c]
            pieces.append(child_pattern[child_pattern > j])
        merged = pieces[0] if len(pieces) == 1 else np.unique(np.concatenate(pieces))
        target = buffer[indptr_l[j] : indptr_l[j + 1]]
        if merged.size != target.size:
            raise AssertionError(
                f"column {j}: merged pattern has {merged.size} rows, "
                f"column count predicts {target.size}"
            )
        target[:] = merged
        patterns[j] = target
    return patterns


@dataclass(frozen=True)
class SymbolicStats:
    """Aggregate results of the symbolic factorization."""

    n: int
    nnz_a: int
    nnz_l: int
    flops: float
    max_column_count: int

    @property
    def fill_ratio(self) -> float:
        """``nnz(L) / nnz(tril(A))`` -- the fill-in factor."""
        return self.nnz_l / max(self.nnz_a, 1)


def symbolic_stats(
    matrix: sp.spmatrix,
    parent: Optional[Sequence[int]] = None,
    *,
    counts: Optional[np.ndarray] = None,
    engine: str = "kernel",
    symmetrize: bool = True,
) -> SymbolicStats:
    """Size, fill and flop statistics of the Cholesky factorization.

    ``counts`` may pass precomputed column counts (as returned by
    :func:`column_counts` for the same matrix) to skip recomputing them;
    ``symmetrize=False`` declares that ``matrix`` already is a symmetrized
    pattern (see :func:`column_counts`).
    """
    pattern = symmetrized_pattern(matrix) if symmetrize else sp.csr_matrix(matrix)
    n = pattern.shape[0]
    if counts is None:
        counts = column_counts(pattern, parent, engine=engine)
    nnz_lower_a = int((pattern.nnz + n) // 2)
    flops = float(np.sum(counts.astype(np.float64) ** 2))
    return SymbolicStats(
        n=n,
        nnz_a=nnz_lower_a,
        nnz_l=int(np.sum(counts)),
        flops=flops,
        max_column_count=int(np.max(counts)) if n else 0,
    )
