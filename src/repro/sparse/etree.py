"""Elimination trees of sparse symmetric matrices.

The elimination tree (Schreiber 1982; Liu 1990) of an ``n x n`` symmetric
matrix ``A`` with Cholesky factor ``L`` has one vertex per column and

``parent(j) = min { i > j : l_ij != 0 }``

It is the transitive reduction of the column-dependency graph and drives both
the symbolic factorization and the multifrontal method.  This module
implements Liu's nearly-linear-time construction with path compression, plus
helpers to postorder the tree and to export it as a
:class:`repro.core.tree.Tree`.

Two engines are provided, mirroring the ``engine="kernel"|"reference"``
convention of :mod:`repro.core.kernel`:

* ``"kernel"`` (default) bulk-extracts the strictly-lower structure with
  vectorized numpy (no Python pass over the matrix) and then runs the
  path-compressed ancestor climb as plain-int pointer chasing on flat
  lists -- about 7x the reference at 100k columns.  A fully batched
  variant that climbs whole per-column frontiers as numpy arrays was
  measured and rejected: path compression keeps the frontiers so short
  that per-column numpy call overhead costs more than it saves.
* ``"reference"`` is the original per-entry loop over numpy scalars, kept
  verbatim as the test oracle.

Both engines return bit-identical parent arrays (the elimination tree of a
matrix is unique).

The module also hosts the flat-array tree machinery shared with
:mod:`repro.sparse.symbolic`: children in CSR form, an iterative postorder,
vectorized depths via pointer doubling, and batched lowest-common-ancestor
queries via binary lifting.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.tree import Tree, TreeValidationError
from .graph import symmetrized_pattern

__all__ = [
    "elimination_tree",
    "etree_children",
    "etree_postorder",
    "etree_heights",
    "etree_levels",
    "etree_to_task_tree",
]

_ENGINES = ("kernel", "reference")


def _check_engine(engine: str) -> None:
    if engine not in _ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected 'kernel' or 'reference'")


# ----------------------------------------------------------------------
# flat-array tree machinery (shared with repro.sparse.symbolic)
# ----------------------------------------------------------------------
def _children_csr(parent: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Children of every vertex in CSR form, plus the roots.

    Children of ``v`` are ``child_idx[child_ptr[v]:child_ptr[v+1]]`` in
    increasing order (matching :func:`etree_children`); ``roots`` lists the
    vertices with ``parent < 0`` in increasing order.
    """
    n = parent.size
    nonroot = parent >= 0
    counts = np.bincount(parent[nonroot], minlength=n)
    child_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=child_ptr[1:])
    # collapse every root marker to -1 before sorting: any negative value
    # marks a root, and all roots must come out in increasing vertex order
    # (a stable sort on the raw array would order roots by marker value)
    key = np.where(nonroot, parent, -1)
    order = np.argsort(key, kind="stable")
    n_roots = n - int(np.count_nonzero(nonroot))
    return child_ptr, order[n_roots:], order[:n_roots]


def _lower_coo(pattern: sp.csr_matrix) -> Tuple[np.ndarray, np.ndarray]:
    """Strictly-lower entries of a CSR pattern as (row, col) index arrays."""
    n = pattern.shape[0]
    indptr, indices = pattern.indptr, pattern.indices
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(indptr))
    below = indices < row_of
    return row_of[below], indices[below].astype(np.int64, copy=False)


def _postorder_flat(parent: np.ndarray) -> np.ndarray:
    """Postorder permutation via an explicit stack on flat arrays."""
    n = parent.size
    child_ptr_a, child_idx_a, roots_a = _children_csr(parent)
    # plain-int lists: scalar indexing on Python lists is several times
    # faster than on numpy arrays, and this loop is pure scalar work
    child_ptr = child_ptr_a.tolist()
    child_idx = child_idx_a.tolist()
    cursor = child_ptr[:-1]
    order = np.empty(n, dtype=np.int64)
    stack = [0] * n
    pos = 0
    for root in roots_a.tolist():
        top = 0
        stack[0] = root
        while top >= 0:
            v = stack[top]
            cur = cursor[v]
            if cur < child_ptr[v + 1]:
                cursor[v] = cur + 1
                top += 1
                stack[top] = child_idx[cur]
            else:
                order[pos] = v
                pos += 1
                top -= 1
    return order


def etree_levels(parent: Sequence[int]) -> np.ndarray:
    """Depth (in edges) of every vertex below its root, fully vectorized.

    Uses pointer doubling on the parent array: ``O(n log(height))`` numpy
    work, no per-vertex Python iteration.

    Raises
    ------
    TreeValidationError
        If the parent array contains a cycle (no depth is then defined;
        ``k`` doublings resolve every depth up to ``2^k``, so failing to
        converge within ``log2(n) + 1`` rounds proves a cycle).  This is the
        error type the historical tree builders raised, and it subclasses
        ``ValueError``.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    vertex = np.arange(n, dtype=np.int64)
    anc = np.where(parent >= 0, parent, vertex)
    depth = (parent >= 0).astype(np.int64)
    for _ in range(max(1, n.bit_length() + 1)):
        anc_next = anc[anc]
        if np.array_equal(anc_next, anc):
            # a genuine fixed point parks every vertex on a root; an
            # even-length cycle also reaches a fixed point (the doubled
            # pointer orbits back onto itself), but parks on cycle
            # vertices, which still have parents
            if np.any(parent[anc] >= 0):
                raise TreeValidationError("parent array contains a cycle")
            return depth
        depth = depth + depth[anc]
        anc = anc_next
    raise TreeValidationError("parent array contains a cycle")


def _ancestor_table(parent: np.ndarray, levels: np.ndarray) -> np.ndarray:
    """Binary-lifting table: ``up[k][v]`` is the ``2^k``-th ancestor of ``v``
    (clamped at the root, which points to itself)."""
    n = parent.size
    max_level = int(levels.max()) if n else 0
    n_bits = max(1, max_level.bit_length())
    up = np.empty((n_bits, n), dtype=np.int64)
    up[0] = np.where(parent >= 0, parent, np.arange(n, dtype=np.int64))
    for k in range(1, n_bits):
        up[k] = up[k - 1][up[k - 1]]
    return up


def _lca_batch(
    up: np.ndarray, levels: np.ndarray, a: np.ndarray, b: np.ndarray
) -> np.ndarray:
    """Lowest common ancestors of the pairs ``(a[t], b[t])``, vectorized.

    All pairs must live in the same tree of the forest (guaranteed here:
    both endpoints are descendants of the same matrix row).
    """
    la, lb = levels[a], levels[b]
    deeper = la >= lb
    hi = np.where(deeper, a, b)
    lo = np.where(deeper, b, a)
    diff = np.abs(la - lb)
    n_bits = up.shape[0]
    for k in range(n_bits):
        mask = (diff >> k) & 1 == 1
        if mask.any():
            hi[mask] = up[k][hi[mask]]
    settled = hi == lo
    for k in range(n_bits - 1, -1, -1):
        jump = ~settled & (up[k][hi] != up[k][lo])
        if jump.any():
            hi[jump] = up[k][hi[jump]]
            lo[jump] = up[k][lo[jump]]
    return np.where(settled, hi, up[0][hi])


def _first_descendants(parent: np.ndarray, post: np.ndarray) -> np.ndarray:
    """First (smallest) postorder position inside every vertex's subtree.

    The first node a DFS emits below ``v`` is the leaf reached by always
    following the first child; that leftmost leaf is found by pointer
    doubling on the first-child array -- no Python loop.
    """
    n = parent.size
    child_ptr, child_idx, _ = _children_csr(parent)
    leftmost = np.arange(n, dtype=np.int64)
    has_child = child_ptr[1:] > child_ptr[:-1]
    leftmost[has_child] = child_idx[child_ptr[:-1][has_child]]
    while True:
        nxt = leftmost[leftmost]
        if np.array_equal(nxt, leftmost):
            return post[leftmost]
        leftmost = nxt


# ----------------------------------------------------------------------
# elimination tree construction
# ----------------------------------------------------------------------
def elimination_tree(
    matrix: sp.spmatrix, *, symmetrize: bool = True, engine: str = "kernel"
) -> np.ndarray:
    """Parent array of the elimination tree of ``matrix``.

    Parameters
    ----------
    matrix:
        Square sparse matrix; only the pattern is used.
    symmetrize:
        When True (default) the pattern ``|A| + |A|ᵀ + I`` is used, as in the
        paper; set to False if the matrix is already structurally symmetric.
    engine:
        ``"kernel"`` (default) bulk-extracts the lower structure with numpy
        and climbs with plain-int path compression on flat lists;
        ``"reference"`` is the original per-entry loop over numpy scalars.
        Both produce identical parent arrays.

    Returns
    -------
    numpy.ndarray
        ``parent[j]`` is the parent column of ``j``, or ``-1`` for roots
        (the tree is a forest when the matrix is reducible).

    Notes
    -----
    Implements Liu's algorithm: columns are processed in order; for every
    nonzero ``a_kj`` with ``k < j`` the path from ``k`` towards the root is
    climbed (with path compression through the ``ancestor`` array) and the
    last vertex without a parent is attached to ``j``.  The running time is
    ``O(nnz * alpha(n))``.
    """
    _check_engine(engine)
    pattern = symmetrized_pattern(matrix) if symmetrize else sp.csr_matrix(matrix)
    if engine == "reference":
        return _reference_elimination_tree(pattern)
    return _kernel_elimination_tree(pattern)


def _reference_elimination_tree(pattern: sp.csr_matrix) -> np.ndarray:
    """Per-nonzero Liu construction (the test oracle)."""
    n = pattern.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = pattern.indptr, pattern.indices

    for j in range(n):
        for k in indices[indptr[j] : indptr[j + 1]]:
            if k >= j:
                continue
            # climb from k to the current root of its subtree
            v = int(k)
            while ancestor[v] != -1 and ancestor[v] != j:
                nxt = int(ancestor[v])
                ancestor[v] = j  # path compression
                v = nxt
            if ancestor[v] == -1:
                ancestor[v] = j
                parent[v] = j
    return parent


def _kernel_elimination_tree(pattern: sp.csr_matrix) -> np.ndarray:
    """Liu construction on flat arrays: vectorized structure extraction,
    plain-int path-compressed climbs.

    The strictly-lower entries are sliced out of the CSR arrays in one
    vectorized pass, then converted to Python lists once; the ancestor climb
    itself touches only plain machine integers, avoiding the numpy-scalar
    boxing that dominates the reference loop.  The visited set per column --
    and therefore the resulting parent array -- is identical to the
    reference's.
    """
    n = pattern.shape[0]
    # strictly-lower CSR: the below-diagonal entries of every row
    bd_rows, bd_cols = _lower_coo(pattern)
    bd_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(bd_rows, minlength=n), out=bd_ptr[1:])
    bd_indices = bd_cols.tolist()
    bd_ptr_list = bd_ptr.tolist()

    parent = [-1] * n
    ancestor = [-1] * n
    for j in range(n):
        for t in range(bd_ptr_list[j], bd_ptr_list[j + 1]):
            v = bd_indices[t]
            while True:
                a = ancestor[v]
                if a == j:
                    break
                ancestor[v] = j  # path compression
                if a == -1:
                    parent[v] = j
                    break
                v = a
    return np.asarray(parent, dtype=np.int64)


def etree_children(parent: Sequence[int]) -> List[List[int]]:
    """Children lists of an elimination tree given its parent array."""
    n = len(parent)
    children: List[List[int]] = [[] for _ in range(n)]
    for v, p in enumerate(parent):
        if p >= 0:
            children[p].append(v)
    return children


def etree_postorder(parent: Sequence[int]) -> np.ndarray:
    """A postorder permutation of the elimination tree (children first).

    Every subtree occupies a contiguous index range in the returned order,
    which is the property the multifrontal stack relies on.  Roots are
    visited in increasing order and children in increasing order, so the
    output matches the historical per-node implementation bit for bit.
    """
    return _postorder_flat(np.asarray(parent, dtype=np.int64))


def etree_heights(parent: Sequence[int]) -> np.ndarray:
    """Height (longest descending path, in edges) of every vertex."""
    n = len(parent)
    heights = np.zeros(n, dtype=np.int64)
    order = etree_postorder(parent)
    for v in order:
        p = parent[v]
        if p >= 0:
            heights[p] = max(heights[p], heights[v] + 1)
    return heights


def etree_to_task_tree(
    parent: Sequence[int],
    f: Optional[Sequence[float]] = None,
    n_weights: Optional[Sequence[float]] = None,
) -> Tree:
    """Convert a parent array into a :class:`~repro.core.tree.Tree`.

    Forests (several roots) are connected through an artificial zero-weight
    super-root labelled ``-1`` so that the traversal algorithms, which expect
    a single root, apply unchanged.

    The tree is bulk-built through :meth:`Tree.from_parents` from a
    depth-sorted permutation of the parent array -- no per-node membership
    checks -- and the same arrays pre-populate the cached
    :class:`~repro.core.kernel.TreeKernel`, so the solver hot paths run on
    etree-derived trees without a separate relabeling pass.  Children orders
    (and therefore every solver tie-break) match the historical per-node
    construction.
    """
    parent = np.asarray(parent, dtype=np.int64)
    n = parent.size
    f = np.zeros(n) if f is None else np.asarray(f, dtype=np.float64)
    nw = np.zeros(n) if n_weights is None else np.asarray(n_weights, dtype=np.float64)
    if f.size != n or nw.size != n:
        raise ValueError("parent, f and n_weights must have the same length")
    levels = etree_levels(parent)
    n_roots = int(np.count_nonzero(parent < 0))
    vertex = np.arange(n, dtype=np.int64)
    if n_roots == 1:
        # BFS insertion order of the historical builder: depth-major,
        # siblings in increasing column order
        order = np.lexsort((vertex, levels))
        pos = np.empty(n, dtype=np.int64)
        pos[order] = np.arange(n, dtype=np.int64)
        shuffled = parent[order]
        new_parent = np.where(shuffled >= 0, pos[np.clip(shuffled, 0, None)], -1)
        tree = Tree.from_parents(
            new_parent.tolist(),
            f=f[order].tolist(),
            n=nw[order].tolist(),
            ids=order.tolist(),
            build_kernel=True,
        )
        tree.validate()
        return tree
    # forest: zero-weight super-root -1; the historical DFS builder visited
    # siblings in decreasing column order, preserved here for bit-compatible
    # children lists
    order = np.lexsort((-vertex, levels))
    pos = np.empty(n, dtype=np.int64)
    pos[order] = np.arange(1, n + 1, dtype=np.int64)
    shuffled = parent[order]
    new_parent = np.where(shuffled >= 0, pos[np.clip(shuffled, 0, None)], 0)
    tree = Tree.from_parents(
        [-1] + new_parent.tolist(),
        f=[0.0] + f[order].tolist(),
        n=[0.0] + nw[order].tolist(),
        ids=[-1] + order.tolist(),
        build_kernel=True,
    )
    tree.validate()
    return tree
