"""Elimination trees of sparse symmetric matrices.

The elimination tree (Schreiber 1982; Liu 1990) of an ``n x n`` symmetric
matrix ``A`` with Cholesky factor ``L`` has one vertex per column and

``parent(j) = min { i > j : l_ij != 0 }``

It is the transitive reduction of the column-dependency graph and drives both
the symbolic factorization and the multifrontal method.  This module
implements Liu's nearly-linear-time construction with path compression, plus
helpers to postorder the tree and to export it as a
:class:`repro.core.tree.Tree`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..core.builders import from_parent_list
from ..core.tree import Tree
from .graph import symmetrized_pattern

__all__ = [
    "elimination_tree",
    "etree_children",
    "etree_postorder",
    "etree_heights",
    "etree_to_task_tree",
]


def elimination_tree(matrix: sp.spmatrix, *, symmetrize: bool = True) -> np.ndarray:
    """Parent array of the elimination tree of ``matrix``.

    Parameters
    ----------
    matrix:
        Square sparse matrix; only the pattern is used.
    symmetrize:
        When True (default) the pattern ``|A| + |A|ᵀ + I`` is used, as in the
        paper; set to False if the matrix is already structurally symmetric.

    Returns
    -------
    numpy.ndarray
        ``parent[j]`` is the parent column of ``j``, or ``-1`` for roots
        (the tree is a forest when the matrix is reducible).

    Notes
    -----
    Implements Liu's algorithm: columns are processed in order; for every
    nonzero ``a_kj`` with ``k < j`` the path from ``k`` towards the root is
    climbed (with path compression through the ``ancestor`` array) and the
    last vertex without a parent is attached to ``j``.  The running time is
    ``O(nnz * alpha(n))``.
    """
    pattern = symmetrized_pattern(matrix) if symmetrize else sp.csr_matrix(matrix)
    n = pattern.shape[0]
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr, indices = pattern.indptr, pattern.indices

    for j in range(n):
        for k in indices[indptr[j] : indptr[j + 1]]:
            if k >= j:
                continue
            # climb from k to the current root of its subtree
            v = int(k)
            while ancestor[v] != -1 and ancestor[v] != j:
                nxt = int(ancestor[v])
                ancestor[v] = j  # path compression
                v = nxt
            if ancestor[v] == -1:
                ancestor[v] = j
                parent[v] = j
    return parent


def etree_children(parent: Sequence[int]) -> List[List[int]]:
    """Children lists of an elimination tree given its parent array."""
    n = len(parent)
    children: List[List[int]] = [[] for _ in range(n)]
    for v, p in enumerate(parent):
        if p >= 0:
            children[p].append(v)
    return children


def etree_postorder(parent: Sequence[int]) -> np.ndarray:
    """A postorder permutation of the elimination tree (children first).

    Every subtree occupies a contiguous index range in the returned order,
    which is the property the multifrontal stack relies on.
    """
    n = len(parent)
    children = etree_children(parent)
    roots = [v for v in range(n) if parent[v] < 0]
    order: List[int] = []
    for root in roots:
        stack: List[Tuple[int, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            stack.append((node, True))
            for child in reversed(children[node]):
                stack.append((child, False))
    return np.asarray(order, dtype=np.int64)


def etree_heights(parent: Sequence[int]) -> np.ndarray:
    """Height (longest descending path, in edges) of every vertex."""
    n = len(parent)
    heights = np.zeros(n, dtype=np.int64)
    order = etree_postorder(parent)
    for v in order:
        p = parent[v]
        if p >= 0:
            heights[p] = max(heights[p], heights[v] + 1)
    return heights


def etree_to_task_tree(
    parent: Sequence[int],
    f: Optional[Sequence[float]] = None,
    n_weights: Optional[Sequence[float]] = None,
) -> Tree:
    """Convert a parent array into a :class:`~repro.core.tree.Tree`.

    Forests (several roots) are connected through an artificial zero-weight
    super-root labelled ``-1`` so that the traversal algorithms, which expect
    a single root, apply unchanged.
    """
    n = len(parent)
    f = [0.0] * n if f is None else list(f)
    n_weights = [0.0] * n if n_weights is None else list(n_weights)
    roots = [v for v in range(n) if parent[v] < 0]
    if len(roots) == 1:
        parents = [None if p < 0 else int(p) for p in parent]
        return from_parent_list(parents, f=f, n=n_weights)
    tree = Tree()
    tree.add_node(-1, f=0.0, n=0.0)
    children = etree_children(parent)
    stack = [(root, -1) for root in roots]
    while stack:
        node, par = stack.pop()
        tree.add_node(node, parent=par, f=f[node], n=n_weights[node])
        stack.extend((c, node) for c in children[node])
    tree.validate()
    return tree
