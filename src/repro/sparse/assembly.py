"""End-to-end construction of weighted assembly trees from sparse matrices.

This is the pipeline of Section VI-B of the paper:

1. symmetrize the pattern (``|A| + |A|ᵀ + I``);
2. apply a fill-reducing ordering (nested dissection, minimum degree, RCM or
   natural);
3. build the elimination tree and the column counts of ``L``;
4. amalgamate (perfect + relaxed) into an assembly tree;
5. weight every supernode with ``n = eta^2 + 2 eta (mu - 1)`` and every edge
   with ``f = (mu - 1)^2``.

The result is a :class:`repro.core.tree.Tree` ready to be fed to the
MinMemory / MinIO algorithms, together with all the intermediate artefacts
for inspection.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Union

import numpy as np
import scipy.sparse as sp

from ..core.tree import Tree
from .amalgamation import AmalgamatedTree, amalgamate
from .etree import elimination_tree
from .graph import symmetrized_pattern
from .ordering import ORDERINGS, apply_ordering
from .symbolic import column_counts, symbolic_stats, SymbolicStats

__all__ = ["AssemblyTreeResult", "build_assembly_tree", "assembly_tree_from_etree"]


@dataclass(frozen=True)
class AssemblyTreeResult:
    """All artefacts of the matrix -> assembly-tree pipeline.

    Attributes
    ----------
    tree:
        The weighted assembly tree (node ids are supernode indices; the root
        of a forest is an artificial node ``-1`` with zero weights).
    permutation:
        Fill-reducing permutation applied to the matrix.
    etree_parent:
        Elimination-tree parent array of the permuted matrix.
    counts:
        Column counts of ``L`` for the permuted matrix.
    amalgamated:
        Supernode structure (members, ``eta``, ``mu``, quotient tree).
    symbolic:
        Aggregate symbolic-factorization statistics.
    ordering:
        Name of the ordering used.
    relaxed:
        Relaxed-amalgamation budget used.
    """

    tree: Tree
    permutation: np.ndarray
    etree_parent: np.ndarray
    counts: np.ndarray
    amalgamated: AmalgamatedTree
    symbolic: SymbolicStats
    ordering: str
    relaxed: int


def build_assembly_tree(
    matrix: sp.spmatrix,
    *,
    ordering: Union[str, Sequence[int]] = "nested_dissection",
    relaxed: int = 1,
    perfect: bool = True,
    engine: str = "kernel",
    stage_seconds: Optional[Dict[str, float]] = None,
) -> AssemblyTreeResult:
    """Build a weighted assembly tree from a sparse symmetric matrix.

    Parameters
    ----------
    matrix:
        Square sparse matrix (its pattern is symmetrized internally).
    ordering:
        Name of a fill-reducing ordering (``"natural"``, ``"rcm"``,
        ``"minimum_degree"``, ``"nested_dissection"``) or an explicit
        permutation array.
    relaxed:
        Relaxed-amalgamation budget per supernode (the paper uses 1, 2, 4
        and 16).
    perfect:
        Whether perfect amalgamation is applied first (default True).
    engine:
        ``"kernel"`` (default) runs the vectorized symbolic pipeline
        (etree, column counts, amalgamation); ``"reference"`` the original
        per-entry implementations.  Identical results either way.
    stage_seconds:
        Optional dict the pipeline fills with per-stage wall times (keys
        ``symmetrize``, ``ordering``, ``permute``, ``etree``, ``counts``,
        ``amalgamate``, ``tree``), so callers like the CLI ``pipeline``
        subcommand report timings without re-implementing the stage
        sequence.
    """
    if stage_seconds is None:
        def staged(name, fn):
            return fn()
    else:
        def staged(name, fn):
            start = time.perf_counter()
            result = fn()
            stage_seconds[name] = time.perf_counter() - start
            return result

    pattern = staged("symmetrize", lambda: symmetrized_pattern(matrix))
    if isinstance(ordering, str):
        if ordering not in ORDERINGS:
            raise ValueError(
                f"unknown ordering {ordering!r}; expected one of {sorted(ORDERINGS)}"
            )
        perm = staged("ordering", lambda: ORDERINGS[ordering](pattern))
        ordering_name = ordering
    else:
        perm = np.asarray(ordering, dtype=np.int64)
        ordering_name = "custom"
    permuted = staged("permute", lambda: apply_ordering(pattern, perm))

    # `permuted` is the symmetrized pattern under a symmetric permutation, so
    # every downstream stage can skip its own re-symmetrization pass
    parent = staged(
        "etree",
        lambda: elimination_tree(permuted, symmetrize=False, engine=engine),
    )
    counts = staged(
        "counts",
        lambda: column_counts(permuted, parent, engine=engine, symmetrize=False),
    )
    stats = symbolic_stats(
        permuted, parent, counts=counts, engine=engine, symmetrize=False
    )
    amalgamated = staged(
        "amalgamate",
        lambda: amalgamate(
            parent, counts, relaxed=relaxed, perfect=perfect, engine=engine
        ),
    )
    tree = staged("tree", lambda: assembly_tree_from_etree(amalgamated))
    return AssemblyTreeResult(
        tree=tree,
        permutation=perm,
        etree_parent=parent,
        counts=counts,
        amalgamated=amalgamated,
        symbolic=stats,
        ordering=ordering_name,
        relaxed=relaxed,
    )


def assembly_tree_from_etree(amalgamated: AmalgamatedTree) -> Tree:
    """Convert an :class:`AmalgamatedTree` into a weighted task tree.

    Node ``s`` receives ``n = eta^2 + 2 eta (mu - 1)`` and
    ``f = (mu - 1)^2``; roots of the forest are attached to an artificial
    zero-weight super-root ``-1`` and keep ``f = 0`` (the factor columns of a
    root are written directly to secondary storage, outside the I/O model).
    """
    parent = amalgamated.parent
    roots = [s for s in range(amalgamated.size) if parent[s] < 0]
    tree = Tree()
    single_root = len(roots) == 1

    def weights(index: int, is_root: bool):
        sn = amalgamated.supernodes[index]
        f = 0.0 if is_root else sn.edge_weight
        return f, sn.node_weight

    children = amalgamated.children()
    if single_root:
        root = roots[0]
        f, nw = weights(root, True)
        tree.add_node(root, f=f, n=nw)
        stack = [(c, root) for c in children[root]]
    else:
        tree.add_node(-1, f=0.0, n=0.0)
        stack = [(r, -1) for r in roots]
    while stack:
        node, par = stack.pop()
        is_forest_root = par == -1 and not single_root
        f, nw = weights(node, is_forest_root)
        tree.add_node(node, parent=par, f=f, n=nw)
        stack.extend((c, node) for c in children[node])
    tree.validate()
    return tree
