"""The ``faults=``-wrapping backend decorator: chaos without backend edits.

:class:`FaultyBackend` wraps any registered :class:`ExecutorBackend` and
executes a :class:`~repro.faults.plan.FaultPlan` against the cell stream
passing through it.  The wrapped backend is untouched -- the whole point of
the decorator shape is that persistent/fresh/threads/serial/dask all run
under chaos with zero code changes to the backends themselves.

Position bookkeeping is the subtle part.  Faults are keyed by *cell
sequence number*: the order cells are **first** submitted.  The resilience
machinery above re-submits cells freely (straggler re-splits, retry
attempts, engine serial fallbacks), so the injector keeps an ``id()``-keyed
map of every cell object it has seen -- with strong references, so ids stay
valid -- and a re-submission neither advances the sequence nor re-fires a
consumed fault.  A plan therefore injects each fault exactly once, which is
what lets chaos tests assert "counters in extras == the injected plan".

Fault delivery by kind:

* worker-side kinds (``worker_kill``, ``straggler``, ``timeout``,
  ``transient``) ride inside the cell's options under the reserved
  ``_fault`` key; the solver dispatch trips them in the worker *before*
  the wall-time stamp starts.  ``worker_kill`` degrades to ``transient``
  on backends that do not release the GIL (threads/serial): an in-process
  "worker" cannot die without taking the parent with it.
* submit-side kinds fire in this wrapper: ``pickling`` and ``shm`` raise
  (``PicklingError`` / ``ExecutorUnavailable``) from blocking calls and
  resolve to failed futures from asynchronous ones; ``broken_pool``
  likewise surfaces a ``BrokenProcessPool`` without any real crash, which
  is how the service smoke drives the circuit breaker deterministically.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Any, Dict, List, Sequence

from ..solvers.engine.backends.base import Cell, ExecutorBackend, ExecutorUnavailable
from .plan import FaultPlan, FaultSpec, WORKER_FAULT_KINDS
from .stats import global_fault_stats

__all__ = ["FaultyBackend", "FAULT_OPTION_KEY"]

#: reserved options key carrying a worker-side fault into the dispatch
FAULT_OPTION_KEY = "_fault"


def _submit_error(spec: FaultSpec) -> BaseException:
    """The exception a submit-side fault surfaces as."""
    if spec.kind == "pickling":
        from pickle import PicklingError

        return PicklingError(
            f"injected pickling fault at cell {spec.at}"
        )
    if spec.kind == "shm":
        return ExecutorUnavailable(
            f"injected shm-unavailable fault at cell {spec.at}"
        )
    from concurrent.futures.process import BrokenProcessPool

    return BrokenProcessPool(
        f"injected broken-pool fault at cell {spec.at}"
    )


class FaultyBackend(ExecutorBackend):
    """Wrap ``inner`` so the given :class:`FaultPlan` fires against it.

    Mirrors the inner backend's name and capability flags, delegates every
    lifecycle call, and keeps per-wrapper injection counters (``injected``)
    alongside the process-global ledger.
    """

    def __init__(self, inner: ExecutorBackend, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._lock = threading.Lock()
        #: id(cell) -> sequence position; _refs pins the ids
        self._positions: Dict[int, int] = {}
        self._refs: List[Cell] = []
        self._next_position = 0
        self.injected: Dict[str, int] = {}
        # mirror identity and capabilities so every layer above sees the
        # wrapped backend exactly as it would see the real one
        self.name = inner.name
        self.summary = inner.summary
        self.ships_arena = inner.ships_arena
        self.releases_gil = inner.releases_gil
        self.distributed = inner.distributed
        self.supports_futures = inner.supports_futures
        self.service = inner.service

    # ------------------------------------------------------------------
    @property
    def inner(self) -> ExecutorBackend:
        return self._inner

    @property
    def plan(self) -> FaultPlan:
        return self._plan

    def _record(self, spec: FaultSpec) -> None:
        self.injected[spec.kind] = self.injected.get(spec.kind, 0) + 1
        global_fault_stats.record_injection(spec.kind)

    def _prepare(self, cell: Cell):
        """Assign ``cell`` its sequence position and arm its faults.

        Returns ``(cell_to_submit, submit_spec_or_None)``: the cell with any
        worker-side fault folded into its options, plus the first
        submit-side fault to fire (the caller surfaces it).  Re-submissions
        return the cell untouched -- their faults were consumed first time.
        """
        with self._lock:
            key = id(cell)
            if key in self._positions:
                return cell, None
            position = self._next_position
            self._next_position += 1
            self._positions[key] = position
            self._refs.append(cell)
            pending = self._plan.at(position)
        submit_spec = None
        out = cell
        for spec in pending:
            if spec.kind in WORKER_FAULT_KINDS:
                if out is not cell:
                    continue  # one worker fault per cell; extras are inert
                kind = spec.kind
                if kind == "worker_kill" and not self._inner.releases_gil:
                    # an in-process worker cannot die alone: degrade to a
                    # transient solver error (same retry class upstream)
                    kind = "transient"
                tree, algorithm, memory, options = cell
                armed = dict(options)
                armed[FAULT_OPTION_KEY] = {
                    "kind": kind,
                    "at": spec.at,
                    "delay": spec.delay,
                }
                out = (tree, algorithm, memory, armed)
                self._record(spec)
            elif submit_spec is None:
                submit_spec = spec
                self._record(spec)
        return out, submit_spec

    def _prepare_many(self, cells: Sequence[Cell]):
        """Prepare a chunk; the first submit-side fault wins for the unit."""
        prepared: List[Cell] = []
        submit_spec = None
        for cell in cells:
            out, spec = self._prepare(cell)
            prepared.append(out)
            if spec is not None and submit_spec is None:
                submit_spec = spec
        return prepared, submit_spec

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def scatter(self, trees: Sequence[Any]) -> None:
        self._inner.scatter(trees)

    def map_cells(self, cells: Sequence[Cell], workers: int) -> List[Any]:
        prepared, submit_spec = self._prepare_many(cells)
        if submit_spec is not None:
            raise _submit_error(submit_spec)
        return self._inner.map_cells(prepared, workers)

    def submit_cell(self, cell: Cell, workers: int):
        prepared, submit_spec = self._prepare(cell)
        if submit_spec is not None:
            return self._fail_submit(submit_spec)
        return self._inner.submit_cell(prepared, workers)

    def submit_chunk(self, cells: Sequence[Cell], workers: int):
        prepared, submit_spec = self._prepare_many(cells)
        if submit_spec is not None:
            return self._fail_submit(submit_spec)
        return self._inner.submit_chunk(prepared, workers)

    def _fail_submit(self, spec: FaultSpec):
        # shm-unavailable is detected at the submit call in real executors,
        # so it raises synchronously -- that is the path the engine's
        # warn-once serial fallback handles; pickling and broken-pool
        # surface on the future, as concurrent.futures does
        error = _submit_error(spec)
        if spec.kind == "shm":
            raise error
        failed: Future = Future()
        failed.set_exception(error)
        return failed

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._inner.reset()

    def stop(self) -> None:
        self._inner.stop()

    def shutdown(self) -> None:
        self._inner.shutdown()

    def snapshot(self) -> Dict[str, Any]:
        doc = self._inner.snapshot()
        doc["faults"] = {
            "plan": self._plan.describe(),
            "injected": dict(sorted(self.injected.items())),
            "cells_seen": self._next_position,
        }
        return doc

    def __getattr__(self, attr: str) -> Any:
        # anything beyond the protocol (pool handles, test seams) passes
        # through to the wrapped backend
        return getattr(self._inner, attr)
