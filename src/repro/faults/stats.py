"""Process-wide fault/retry/checkpoint counters.

One small, thread-safe ledger shared by every resilience layer:

* ``record_retry(layer, fault)`` -- every retry attempt, labelled by the
  layer that retried (``backend`` = pool-grow races, ``engine`` =
  ``run_batch`` broken-pool re-maps, ``bench`` = campaign work-unit
  resubmissions, ``service`` = daemon broken-pool re-runs);
* ``record_injection(kind)`` -- every fault the injector actually fired;
* ``record_checkpoint_cells(n)`` -- every cell journaled by the campaign
  checkpoint.

The service daemon renders this ledger into the Prometheus exposition
(``repro_retry_attempts_total{layer,fault}``,
``repro_fault_injections_total{kind}``, ``repro_checkpoint_cells_total``);
the bench runner snapshots deltas into run-level artifact ``extras``.
Campaign-scoped exactness (the chaos acceptance check "counters match the
injected plan") additionally keeps local counters on the injector and the
dispatcher, so a noisy neighbour in the same process cannot blur a test.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

__all__ = ["FaultStats", "global_fault_stats"]


class FaultStats:
    """Thread-safe counters; see the module docstring for who writes what."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._retries: Dict[Tuple[str, str], int] = {}
        self._injected: Dict[str, int] = {}
        self._checkpoint_cells = 0

    # ------------------------------------------------------------------
    def record_retry(self, layer: str, fault: str, n: int = 1) -> None:
        with self._lock:
            key = (layer, fault)
            self._retries[key] = self._retries.get(key, 0) + n

    def record_injection(self, kind: str, n: int = 1) -> None:
        with self._lock:
            self._injected[kind] = self._injected.get(kind, 0) + n

    def record_checkpoint_cells(self, n: int) -> None:
        with self._lock:
            self._checkpoint_cells += n

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A JSON-safe copy: retries keyed ``"layer/fault"``."""
        with self._lock:
            return {
                "retries": {
                    f"{layer}/{fault}": n
                    for (layer, fault), n in sorted(self._retries.items())
                },
                "injected": dict(sorted(self._injected.items())),
                "checkpoint_cells": self._checkpoint_cells,
            }

    def retry_items(self):
        """``((layer, fault), count)`` pairs for the metrics exposition."""
        with self._lock:
            return sorted(self._retries.items())

    def injection_items(self):
        with self._lock:
            return sorted(self._injected.items())

    @property
    def checkpoint_cells(self) -> int:
        with self._lock:
            return self._checkpoint_cells


#: the process-wide ledger (tests may read it; nothing ever resets it,
#: exactly like a Prometheus counter)
global_fault_stats = FaultStats()
