"""The unified :class:`RetryPolicy`: typed, budgeted, deterministic.

Before this module every execution layer had its own bespoke retry: a
one-shot grow-retry in the persistent backend, a single broken-pool reset
in the engine, an unconditional in-process redo in the campaign
dispatcher.  They are all now instances of one policy object that answers
three questions:

* **is this failure retryable?** -- by *fault class*
  (:func:`classify_fault`): worker crashes (``broken_pool``), injected or
  genuine transient solver errors (``transient``), timeouts and pool-grow
  races retry; pickling failures and platform unavailability do not
  (re-running cannot fix a deterministic failure);
* **how many times?** -- ``max_attempts`` per operation plus an optional
  policy-wide retry *budget* (:class:`RetryBudget`) so a pathological
  campaign cannot retry forever;
* **how long to wait?** -- exponential backoff with **deterministic
  jitter**: the jitter fraction is a CRC32 hash of ``(key, attempt)``, so
  two runs of the same campaign sleep identically and chaos runs stay
  replayable (``random``-based jitter would not be).
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Optional, Tuple

from .plan import TransientSolverError

__all__ = [
    "classify_fault",
    "RetryBudget",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
]


def classify_fault(exc: BaseException) -> str:
    """Map an exception to its fault class (the retryability key).

    ================= ==================================================
    class             raised by
    ================= ==================================================
    ``broken_pool``   ``concurrent.futures`` when a worker process died
    ``pickling``      unpicklable payloads (deterministic, never retried)
    ``unavailable``   :class:`~repro.solvers.engine.backends.ExecutorUnavailable`
                      -- the platform cannot run the backend at all
    ``transient``     :class:`~repro.faults.plan.TransientSolverError`
    ``timeout``       gather/result timeouts (stdlib + asyncio)
    ``solver``        anything else: the solver's own exception
    ================= ==================================================
    """
    from concurrent.futures import TimeoutError as FuturesTimeout
    from concurrent.futures.process import BrokenProcessPool
    from pickle import PicklingError

    if isinstance(exc, BrokenProcessPool):
        return "broken_pool"
    if isinstance(exc, PicklingError):
        return "pickling"
    if isinstance(exc, TransientSolverError):
        return "transient"
    if isinstance(exc, (FuturesTimeout, TimeoutError)):
        return "timeout"
    # imported lazily to keep this module free of engine dependencies
    from ..solvers.engine.backends.base import ExecutorUnavailable

    if isinstance(exc, ExecutorUnavailable):
        return "unavailable"
    return "solver"


class RetryBudget:
    """A thread-safe pool of retries shared across one policy's users.

    ``take()`` atomically consumes one retry and reports whether any was
    left; an exhausted budget makes every subsequent ``should_retry``
    answer ``False``, bounding the total retry work of a whole campaign
    (not just one operation).
    """

    def __init__(self, limit: Optional[int]) -> None:
        self.limit = limit
        self.spent = 0
        self._lock = threading.Lock()

    def take(self) -> bool:
        with self._lock:
            if self.limit is not None and self.spent >= self.limit:
                return False
            self.spent += 1
            return True

    @property
    def exhausted(self) -> bool:
        with self._lock:
            return self.limit is not None and self.spent >= self.limit


@dataclass(frozen=True)
class RetryPolicy:
    """Typed retry policy: attempts, backoff, budget, retryable classes.

    ``max_attempts`` counts *tries*, not retries: the default 3 means one
    initial attempt plus up to two retries.  ``budget`` bounds retries
    policy-wide (``None`` = unbounded); call :meth:`new_budget` once per
    campaign/engine and pass the same object to every ``should_retry``.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    max_delay: float = 1.0
    multiplier: float = 2.0
    jitter: float = 0.5
    budget: Optional[int] = None
    retryable: Tuple[str, ...] = field(
        default=("broken_pool", "transient", "timeout", "pool_grow")
    )

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    def new_budget(self) -> RetryBudget:
        """A fresh budget pool for one campaign/engine lifetime."""
        return RetryBudget(self.budget)

    def is_retryable(self, fault: str) -> bool:
        return fault in self.retryable

    def should_retry(
        self, fault: str, attempt: int, budget: Optional[RetryBudget] = None
    ) -> bool:
        """Whether to retry after ``attempt`` failed tries on ``fault``.

        Consumes one unit of ``budget`` when it answers ``True`` -- callers
        must therefore retry when told to, or the budget leaks.
        """
        if attempt >= self.max_attempts:
            return False
        if fault not in self.retryable:
            return False
        if budget is not None and not budget.take():
            return False
        return True

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), in seconds.

        Exponential (``base * multiplier**(attempt-1)``, clamped to
        ``max_delay``) with deterministic jitter: the jitter fraction is
        derived from ``crc32(f"{key}:{attempt}")``, so identical campaigns
        sleep identically -- chaos runs must be bit-replayable, which rules
        out ``random`` here.  The jittered delay spans
        ``[1 - jitter/2, 1 + jitter/2]`` times the nominal value.
        """
        nominal = min(
            self.max_delay, self.base_delay * self.multiplier ** (attempt - 1)
        )
        if not self.jitter or not nominal:
            return nominal
        frac = zlib.crc32(f"{key}:{attempt}".encode()) / 0xFFFFFFFF
        return nominal * (1 - self.jitter / 2 + self.jitter * frac)


#: the policy every layer uses unless a caller injects its own
DEFAULT_RETRY_POLICY = RetryPolicy()
