"""Typed faults and the deterministic, seeded :class:`FaultPlan`.

A *fault* is one injected failure with a kind, a position and (for the
delay kinds) a duration.  Positions index the campaign's **cell sequence**:
the injector (:mod:`repro.faults.injector`) numbers every cell the first
time it is submitted, in submission order -- which is deterministic,
because the campaign planner and the service daemon both submit in a
seeded, reproducible order -- and fires the fault whose ``at`` matches.
Re-submissions of the same cell (straggler re-splits, retry attempts)
do **not** advance the sequence and do **not** re-fire consumed faults,
so a plan injects each fault exactly once no matter how the resilience
machinery shuffles the work.

Fault taxonomy (``FAULT_KINDS``):

================ ====================== ==================================
kind             fires                  models
================ ====================== ==================================
``worker_kill``  in the worker          a worker process dying mid-cell
                 (``os._exit``)         (``BrokenProcessPool`` upstream);
                                        degrades to ``transient`` on
                                        in-process backends, which cannot
                                        lose a worker without losing the
                                        parent
``straggler``    in the worker          a slow worker / straggling unit
                 (``time.sleep``)       (exercises re-splitting)
``timeout``      in the worker          a gather/result timeout: a long
                 (``time.sleep``)       stall distinguishable from a mere
                                        straggler only by magnitude
``transient``    in the worker          a transient solver exception
                 (raises               (:class:`TransientSolverError`,
                 ``TransientSolverError``) retryable)
``pickling``     at the submit call     an unpicklable payload
                                        (``pickle.PicklingError``, not
                                        retryable -- deterministic)
``shm``          at the submit call     shared memory / the platform going
                                        away (``ExecutorUnavailable`` ->
                                        the engine's warn-once serial
                                        fallback)
``broken_pool``  on the returned        the executor reporting a broken
                 future                 pool without a real crash (used to
                                        drive the service circuit breaker)
================ ====================== ==================================

Plans serialize to a compact spec string (``"kill@3,straggler@5:0.2"``)
accepted by ``bench --faults`` and ``serve --faults``; see
:func:`parse_faults`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "SUBMIT_FAULT_KINDS",
    "TransientSolverError",
    "FaultSpec",
    "FaultPlan",
    "parse_faults",
    "trip",
]

#: worker-side kinds execute inside the solver dispatch (any backend);
#: submit-side kinds fire in the wrapping backend before delegation
WORKER_FAULT_KINDS = ("worker_kill", "straggler", "timeout", "transient")
SUBMIT_FAULT_KINDS = ("pickling", "shm", "broken_pool")
FAULT_KINDS = WORKER_FAULT_KINDS + SUBMIT_FAULT_KINDS

#: spec-string aliases (``kill@3`` reads better than ``worker_kill@3``)
_KIND_ALIASES = {"kill": "worker_kill"}

#: default sleep of the delay kinds (seconds) when the spec names none
_DEFAULT_DELAYS = {"straggler": 0.05, "timeout": 1.0}

#: exit status of a killed worker -- distinctive, so a genuine crash in a
#: chaos run is not mistaken for the injected one
KILL_EXIT_STATUS = 23


class TransientSolverError(RuntimeError):
    """An injected transient solver failure (retryable by policy).

    Module-level and argument-transparent so it pickles across the process
    boundary: a worker raises it, the parent's retry policy classifies it
    as ``transient`` and re-runs the work unit.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault: ``kind`` fires at cell sequence number ``at``."""

    kind: str
    at: int
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.at < 0:
            raise ValueError(f"fault position must be >= 0, not {self.at}")
        if self.delay < 0:
            raise ValueError(f"fault delay must be >= 0, not {self.delay}")

    def to_dict(self) -> Dict[str, object]:
        """The JSON-safe form shipped to workers inside cell options."""
        return {"kind": self.kind, "at": self.at, "delay": self.delay}

    def describe(self) -> str:
        delay = f":{self.delay:g}" if self.delay else ""
        return f"{self.kind}@{self.at}{delay}"


class FaultPlan:
    """An immutable, ordered schedule of faults keyed by cell position.

    Two plans built from the same specs (or the same seed and counts, via
    :meth:`seeded`) are identical -- determinism is the whole point: a
    chaos campaign must be replayable bit-for-bit.
    """

    def __init__(self, specs: Iterable[FaultSpec] = ()) -> None:
        ordered = sorted(specs, key=lambda s: (s.at, s.kind))
        by_at: Dict[int, List[FaultSpec]] = {}
        for spec in ordered:
            by_at.setdefault(spec.at, []).append(spec)
        self._specs: Tuple[FaultSpec, ...] = tuple(ordered)
        self._by_at = by_at

    # ------------------------------------------------------------------
    @classmethod
    def seeded(
        cls,
        seed: int,
        n_cells: int,
        *,
        worker_kill: int = 0,
        straggler: int = 0,
        timeout: int = 0,
        transient: int = 0,
        pickling: int = 0,
        shm: int = 0,
        broken_pool: int = 0,
        straggler_delay: float = 0.05,
        timeout_delay: float = 1.0,
    ) -> "FaultPlan":
        """Draw fault positions uniformly (without replacement) from a seed.

        ``n_cells`` is the size of the position space; asking for more
        faults than cells raises.  The same ``(seed, n_cells, counts)``
        always yields the same plan.
        """
        counts = {
            "worker_kill": worker_kill,
            "straggler": straggler,
            "timeout": timeout,
            "transient": transient,
            "pickling": pickling,
            "shm": shm,
            "broken_pool": broken_pool,
        }
        total = sum(counts.values())
        if total > n_cells:
            raise ValueError(
                f"cannot place {total} faults in {n_cells} cells"
            )
        rng = random.Random(seed)
        positions = rng.sample(range(n_cells), total)
        delays = {"straggler": straggler_delay, "timeout": timeout_delay}
        specs: List[FaultSpec] = []
        i = 0
        for kind, count in counts.items():
            for _ in range(count):
                specs.append(
                    FaultSpec(kind, positions[i], delays.get(kind, 0.0))
                )
                i += 1
        return cls(specs)

    # ------------------------------------------------------------------
    @property
    def specs(self) -> Tuple[FaultSpec, ...]:
        return self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __bool__(self) -> bool:
        return bool(self._specs)

    def at(self, position: int) -> List[FaultSpec]:
        """Every fault scheduled at cell ``position`` (usually 0 or 1)."""
        return list(self._by_at.get(position, ()))

    def counts(self) -> Dict[str, int]:
        """Planned injections by kind (the ledger chaos tests assert on)."""
        out: Dict[str, int] = {}
        for spec in self._specs:
            out[spec.kind] = out.get(spec.kind, 0) + 1
        return out

    def describe(self) -> str:
        """The spec-string form (round-trips through :func:`parse_faults`)."""
        return ",".join(spec.describe() for spec in self._specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.describe()!r})"


def parse_faults(text: str) -> FaultPlan:
    """Parse a ``--faults`` spec string into a :class:`FaultPlan`.

    Grammar: comma-separated ``kind@position[:delay]`` entries, e.g.
    ``"kill@3,straggler@5:0.2,transient@9"``.  ``kill`` is an alias for
    ``worker_kill``; delays (seconds) apply to the sleep kinds and default
    to 0.05 (``straggler``) / 1.0 (``timeout``).
    """
    specs: List[FaultSpec] = []
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            continue
        if "@" not in entry:
            raise ValueError(
                f"bad fault entry {entry!r}: expected kind@position[:delay]"
            )
        kind_part, _, pos_part = entry.partition("@")
        kind = _KIND_ALIASES.get(kind_part.strip(), kind_part.strip())
        delay: Optional[float] = None
        if ":" in pos_part:
            pos_part, _, delay_part = pos_part.partition(":")
            try:
                delay = float(delay_part)
            except ValueError:
                raise ValueError(
                    f"bad fault delay in {entry!r}: {delay_part!r}"
                ) from None
        try:
            position = int(pos_part)
        except ValueError:
            raise ValueError(
                f"bad fault position in {entry!r}: {pos_part!r}"
            ) from None
        if delay is None:
            delay = _DEFAULT_DELAYS.get(kind, 0.0)
        specs.append(FaultSpec(kind, position, delay))
    if not specs:
        raise ValueError(f"fault spec {text!r} names no faults")
    return FaultPlan(specs)


def trip(fault: Dict[str, object]) -> None:
    """Execute one worker-side fault (called from the solver dispatch).

    ``fault`` is the :meth:`FaultSpec.to_dict` form carried in the cell's
    options under the reserved ``_fault`` key.  Runs *before* the solver's
    wall-time stamp starts, so injected sleeps never pollute the timing
    columns of a chaos campaign.
    """
    kind = fault.get("kind")
    if kind == "worker_kill":
        import os

        # not sys.exit: the point is an abrupt death the executor can only
        # observe as a broken pool, exactly like a segfault or OOM kill
        os._exit(KILL_EXIT_STATUS)
    elif kind in ("straggler", "timeout"):
        import time

        time.sleep(float(fault.get("delay", 0.0)))
    elif kind == "transient":
        raise TransientSolverError(
            f"injected transient fault at cell {fault.get('at')}"
        )
    else:  # pragma: no cover - the injector only ships worker kinds
        raise ValueError(f"cannot trip fault kind {kind!r} in a worker")
