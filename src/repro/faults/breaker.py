"""A circuit breaker for the solver service's engine tier.

The daemon wraps every engine dispatch in :class:`CircuitBreaker`: after
``failure_threshold`` *consecutive* infrastructure failures (worker pool
broken, not solver-level errors -- a bad tree is the caller's problem, not
the engine's) the breaker **opens** and the service rejects new work
immediately with a typed 503 (:class:`~repro.service.errors.CircuitOpenError`)
instead of queueing requests onto a dead engine.  After ``cooldown``
seconds it moves to **half-open** and lets ``half_open_probes`` probe
requests through: one success closes it, one failure re-opens it and
restarts the cooldown.

State is exported as a gauge (``closed=0``, ``open=1``, ``half_open=2``)
and every transition increments a labelled counter, so ``/metrics``
reflects the full history -- the acceptance criterion for this layer.

The clock is injectable so tests can step time instead of sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN", "STATE_CODES"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: gauge encoding of the states (stable; documented in ARCHITECTURE.md)
STATE_CODES = {CLOSED: 0, OPEN: 1, HALF_OPEN: 2}


class CircuitBreaker:
    """Closed -> open -> half-open -> closed, driven by engine outcomes.

    ``allow()`` answers whether a request may proceed *right now* (and, in
    the open state, performs the cooldown-expiry transition to half-open);
    ``record_success()`` / ``record_failure()`` feed the outcome of each
    dispatched request back.  Only infrastructure failures should be fed
    in -- the daemon calls ``record_success`` even when the *solver* errors,
    because a solver exception proves the engine is alive.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be >= 0")
        if half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._transitions: Dict[str, int] = {}
        self._rejections = 0

    # ------------------------------------------------------------------
    def _transition(self, new_state: str) -> None:
        """Move to ``new_state`` (caller holds the lock)."""
        key = f"{self._state}->{new_state}"
        self._transitions[key] = self._transitions.get(key, 0) + 1
        self._state = new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
            self._probes_in_flight = 0
        elif new_state == CLOSED:
            self._consecutive_failures = 0
            self._probes_in_flight = 0
        elif new_state == HALF_OPEN:
            self._probes_in_flight = 0

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a request proceed now?  ``False`` == reject with 503."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at >= self.cooldown:
                    self._transition(HALF_OPEN)
                else:
                    self._rejections += 1
                    return False
            # half-open: admit at most ``half_open_probes`` outstanding
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self._rejections += 1
            return False

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(CLOSED)
            else:
                self._consecutive_failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(OPEN)
            elif self._state == CLOSED:
                self._consecutive_failures += 1
                if self._consecutive_failures >= self.failure_threshold:
                    self._transition(OPEN)
            # failures while already open (in-flight work finishing late)
            # keep it open; the cooldown clock is not restarted for them

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def state_code(self) -> int:
        """The gauge encoding: closed=0, open=1, half_open=2."""
        return STATE_CODES[self.state]

    @property
    def rejections(self) -> int:
        with self._lock:
            return self._rejections

    def transition_items(self):
        """``(("from->to"), count)`` pairs for the metrics exposition."""
        with self._lock:
            return sorted(self._transitions.items())

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "rejections": self._rejections,
                "transitions": dict(sorted(self._transitions.items())),
            }
