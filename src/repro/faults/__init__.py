"""Deterministic fault injection and the unified resilience policy.

``repro.faults`` is the robustness layer of the repo: everything the
execution stack does when work *fails* lives here, in four pieces --

* :mod:`~repro.faults.plan` -- typed faults and the seeded, replayable
  :class:`FaultPlan` (``bench --faults``, ``serve --faults``);
* :mod:`~repro.faults.injector` -- :class:`FaultyBackend`, the decorator
  that runs any executor backend under a plan without touching it;
* :mod:`~repro.faults.policy` -- :class:`RetryPolicy` (typed retryability,
  exponential backoff with deterministic jitter, retry budgets), used by
  the backends, the engine, the campaign dispatcher and the daemon;
* :mod:`~repro.faults.breaker` -- the service tier's
  :class:`CircuitBreaker`;
* :mod:`~repro.faults.stats` -- the process-wide fault/retry ledger behind
  ``/metrics`` and the BENCH artifact extras.

See ARCHITECTURE.md "Failure handling" for the full taxonomy and state
machines.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, STATE_CODES, CircuitBreaker
from .injector import FAULT_OPTION_KEY, FaultyBackend
from .plan import (
    FAULT_KINDS,
    KILL_EXIT_STATUS,
    SUBMIT_FAULT_KINDS,
    WORKER_FAULT_KINDS,
    FaultPlan,
    FaultSpec,
    TransientSolverError,
    parse_faults,
    trip,
)
from .policy import DEFAULT_RETRY_POLICY, RetryBudget, RetryPolicy, classify_fault
from .stats import FaultStats, global_fault_stats

__all__ = [
    "FAULT_KINDS",
    "WORKER_FAULT_KINDS",
    "SUBMIT_FAULT_KINDS",
    "KILL_EXIT_STATUS",
    "FAULT_OPTION_KEY",
    "TransientSolverError",
    "FaultSpec",
    "FaultPlan",
    "parse_faults",
    "trip",
    "FaultyBackend",
    "classify_fault",
    "RetryBudget",
    "RetryPolicy",
    "DEFAULT_RETRY_POLICY",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "STATE_CODES",
    "FaultStats",
    "global_fault_stats",
]
