"""Out-of-core scheduling: the MinIO problem (Section V of the paper).

The MinIO problem asks for the execution (traversal + file evictions) that
minimises the volume of data exchanged with secondary memory when the main
memory ``M`` is too small for a fully in-core traversal.  The problem is
NP-complete (Theorem 2) even when the traversal is fixed, so the package
provides the paper's six greedy eviction heuristics together with an
out-of-core simulator and two lower bounds.
"""

from .heuristics import (
    HEURISTICS,
    get_heuristic,
    select_best_fill,
    select_best_fit,
    select_best_k_combination,
    select_first_fill,
    select_first_fit,
    select_lsnf,
)
from .lower_bounds import divisible_lower_bound, memory_deficit_lower_bound
from .scheduler import OutOfCoreResult, io_volume, run_out_of_core

__all__ = [
    "HEURISTICS",
    "get_heuristic",
    "select_lsnf",
    "select_first_fit",
    "select_best_fit",
    "select_first_fill",
    "select_best_fill",
    "select_best_k_combination",
    "OutOfCoreResult",
    "run_out_of_core",
    "io_volume",
    "divisible_lower_bound",
    "memory_deficit_lower_bound",
]
