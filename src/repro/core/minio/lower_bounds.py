"""Lower bounds on the MinIO volume.

The paper leaves the design of general lower bounds as an open problem
(Section VII) but two simple bounds follow directly from the model; they are
used in the experiment harness to report how far the heuristics can possibly
be from the optimum.

* :func:`memory_deficit_lower_bound` -- any execution must, at the step where
  the in-core peak of its traversal would be attained, have evicted at least
  ``peak - M``; minimising over traversals gives ``max(0, MinMemory(T) - M)``.
* :func:`divisible_lower_bound` -- for a *fixed* traversal, the divisible
  relaxation of MinIO (fractions of files may be written) is solved optimally
  by the LSNF rule; its value lower-bounds the integral MinIO of that
  traversal.
"""

from __future__ import annotations

from typing import Dict, Hashable

from ..liu import liu_min_memory
from ..traversal import TOPDOWN, Traversal, TraversalError, is_topological
from ..tree import Tree

__all__ = ["memory_deficit_lower_bound", "divisible_lower_bound"]

NodeId = Hashable

_EPS = 1e-12


def memory_deficit_lower_bound(tree: Tree, memory: float) -> float:
    """Traversal-independent lower bound ``max(0, MinMemory(T) - M)``.

    Consider any out-of-core execution with node order ``sigma``.  Replaying
    ``sigma`` in-core reaches a peak ``P_sigma >= MinMemory(T)``; at that very
    step the out-of-core execution keeps at most ``M`` units resident, so
    files totalling at least ``P_sigma - M`` have been written (and not yet
    read back).  Hence ``IO >= MinMemory(T) - M`` for every execution.
    """
    return max(0.0, liu_min_memory(tree) - memory)


def divisible_lower_bound(tree: Tree, memory: float, traversal: Traversal) -> float:
    """Optimal I/O volume of the divisible relaxation for a fixed traversal.

    Fractions of files may be evicted; the LSNF rule (evict the bytes whose
    owner executes furthest in the future) is optimal for this relaxation, so
    simulating it yields the exact divisible optimum, which lower-bounds the
    integral MinIO of the same traversal.
    """
    traversal = traversal.as_convention(TOPDOWN)
    if not is_topological(tree, traversal):
        raise TraversalError("traversal violates precedence constraints")
    if memory < tree.max_mem_req() - _EPS:
        raise ValueError("memory is below the largest single-node requirement")

    pos = traversal.position()
    # in-memory fraction of every produced-but-unexecuted file
    resident: Dict[NodeId, float] = {tree.root: tree.f(tree.root)}
    written: Dict[NodeId, float] = {}
    io_total = 0.0

    for node in traversal.order:
        # read back whatever fraction of the input file is on disk
        if node in written:
            resident[node] = resident.get(node, 0.0) + written.pop(node)
        extra = tree.mem_req(node) - tree.f(node)
        need = extra - (memory - sum(resident.values()))
        if need > _EPS:
            # evict fractional bytes, furthest-future-use first
            for victim in sorted(
                (v for v in resident if v != node), key=lambda v: pos[v], reverse=True
            ):
                if need <= _EPS:
                    break
                take = min(resident[victim], need)
                resident[victim] -= take
                if resident[victim] <= _EPS:
                    del resident[victim]
                written[victim] = written.get(victim, 0.0) + take
                io_total += take
                need -= take
            if need > _EPS:
                raise ValueError("infeasible: cannot free enough memory")
        resident.pop(node, None)
        for child in tree.children(node):
            resident[child] = tree.f(child)
    return io_total
