"""Out-of-core execution of a traversal under a limited main memory.

Given a task tree, a main-memory size ``M`` at least as large as the largest
single-node requirement, a traversal, and an eviction heuristic, the
:func:`run_out_of_core` simulator replays the traversal and decides, whenever
the next node does not fit, which resident files to write to secondary
memory.  It returns the complete :class:`~repro.core.traversal.OutOfCoreSchedule`
(node order plus eviction steps) together with the resulting I/O volume; the
schedule is always consistent with the paper's Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple, Union

from ..traversal import (
    TOPDOWN,
    OutOfCoreSchedule,
    Traversal,
    TraversalError,
    is_topological,
)
from ..tree import Tree
from .heuristics import Selector, get_heuristic

__all__ = ["OutOfCoreResult", "run_out_of_core", "io_volume"]

NodeId = Hashable

_EPS = 1e-12


@dataclass(frozen=True)
class OutOfCoreResult:
    """Result of an out-of-core simulation.

    Attributes
    ----------
    schedule:
        The node order plus the eviction step of every written file.
    io_volume:
        Total volume written to secondary memory (reads have the same total
        volume since every written file is read back exactly once).
    io_operations:
        Number of files written.
    peak_resident:
        Largest main-memory occupation observed during the execution
        (never exceeds the memory bound).
    """

    schedule: OutOfCoreSchedule
    io_volume: float
    io_operations: int
    peak_resident: float


def io_volume(
    tree: Tree,
    memory: float,
    traversal: Traversal,
    heuristic: Union[str, Selector] = "first_fit",
) -> float:
    """Convenience wrapper returning only the I/O volume."""
    return run_out_of_core(tree, memory, traversal, heuristic).io_volume


def run_out_of_core(
    tree: Tree,
    memory: float,
    traversal: Traversal,
    heuristic: Union[str, Selector] = "first_fit",
    *,
    engine: str = "kernel",
) -> OutOfCoreResult:
    """Simulate an out-of-core execution of ``traversal`` with ``memory``.

    Parameters
    ----------
    tree : Tree or TreeKernel
        The task tree (a flat :class:`~repro.core.kernel.TreeKernel` is
        accepted directly).
    memory : float
        Main memory size; must satisfy ``memory >= max_i MemReq(i)``,
        otherwise no execution exists and a :class:`ValueError` is raised.
    traversal : Traversal
        Any topological traversal; a bottom-up traversal is reversed into the
        paper's top-down convention first.
    heuristic : str or Selector
        Name of one of the six eviction policies of Section V-B (see
        :data:`repro.core.minio.heuristics.HEURISTICS`) or a custom selector
        ``candidates, io_req -> victims``.
    engine : str
        ``"kernel"`` (default) runs the array-backed simulator of
        :func:`repro.core.kernel.kernel_out_of_core` (incremental resident
        accounting); ``"reference"`` runs the original dict-based loop (kept
        as the test oracle).  Both produce identical schedules.

    Returns
    -------
    OutOfCoreResult
        Schedule, I/O volume and bookkeeping counters.
    """
    if engine not in ("kernel", "reference"):
        raise ValueError(f"unknown engine {engine!r}; expected 'kernel' or 'reference'")
    selector = get_heuristic(heuristic) if isinstance(heuristic, str) else heuristic
    traversal = traversal.as_convention(TOPDOWN)

    if engine == "kernel":
        from ..kernel import TreeKernel, kernel_out_of_core

        kern = tree if isinstance(tree, TreeKernel) else tree.kernel()
        try:
            order = kern.order_to_indices(traversal.order)
        except KeyError:
            raise TraversalError("order is not a permutation of the tree nodes") from None
        if len(order) != kern.size or len(set(order)) != kern.size:
            raise TraversalError("order is not a permutation of the tree nodes")
        seen = [False] * kern.size
        for i in order:  # top-down: every parent before its children
            par = kern.parent[i]
            if par >= 0 and not seen[par]:
                raise TraversalError("traversal violates precedence constraints")
            seen[i] = True
        max_req = kern.max_mem_req()
        if memory < max_req - _EPS:
            raise ValueError(
                f"memory {memory} is below the largest node requirement "
                f"{max_req}; no execution exists"
            )
        evictions_idx, io_total, peak_resident = kernel_out_of_core(
            kern, memory, order, selector, eps=_EPS
        )
        evictions = {kern.ids[i]: step for i, step in evictions_idx.items()}
        schedule = OutOfCoreSchedule(traversal=traversal, evictions=evictions)
        return OutOfCoreResult(
            schedule=schedule,
            io_volume=io_total,
            io_operations=len(evictions),
            peak_resident=peak_resident,
        )

    if not isinstance(tree, Tree):
        tree = tree.to_tree()
    if not is_topological(tree, traversal):
        raise TraversalError("traversal violates precedence constraints")
    if memory < tree.max_mem_req() - _EPS:
        raise ValueError(
            f"memory {memory} is below the largest node requirement "
            f"{tree.max_mem_req()}; no execution exists"
        )

    pos = traversal.position()
    resident: Dict[NodeId, float] = {tree.root: tree.f(tree.root)}
    on_disk: set = set()
    evictions: Dict[NodeId, int] = {}
    io_total = 0.0
    peak_resident = tree.f(tree.root)

    for step, node in enumerate(traversal.order):
        # 1. read the input file back if it was unloaded
        if node in on_disk:
            on_disk.discard(node)
            resident[node] = tree.f(node)

        # 2. determine how much must be freed to execute the node
        extra = tree.mem_req(node) - tree.f(node)
        m_avail = memory - sum(resident.values())
        io_req = extra - m_avail
        if io_req > _EPS:
            candidates = _candidates(tree, resident, pos, node)
            victims = selector(candidates, io_req)
            freed = 0.0
            for victim in victims:
                freed += resident.pop(victim)
                on_disk.add(victim)
                evictions[victim] = step
                io_total += tree.f(victim)
            if freed + _EPS < io_req:
                # The heuristic did not free enough; finish with LSNF order so
                # the execution always proceeds (possible since M >= MemReq).
                for victim, size in _candidates(tree, resident, pos, node):
                    if freed >= io_req - _EPS:
                        break
                    freed += resident.pop(victim)
                    on_disk.add(victim)
                    evictions[victim] = step
                    io_total += size
            if freed + _EPS < io_req:
                raise ValueError(
                    "infeasible eviction: not enough resident files to free"
                )

        # 3. execute the node
        peak_resident = max(
            peak_resident, sum(resident.values()) + extra
        )
        resident.pop(node, None)
        for child in tree.children(node):
            resident[child] = tree.f(child)

    schedule = OutOfCoreSchedule(traversal=traversal, evictions=evictions)
    return OutOfCoreResult(
        schedule=schedule,
        io_volume=io_total,
        io_operations=len(evictions),
        peak_resident=peak_resident,
    )


def _candidates(
    tree: Tree,
    resident: Dict[NodeId, float],
    pos: Dict[NodeId, int],
    current: NodeId,
) -> List[Tuple[NodeId, float]]:
    """Evictable files ordered latest-scheduled-first (the paper's set ``S``)."""
    nodes = [v for v in resident if v != current]
    nodes.sort(key=lambda v: pos[v], reverse=True)
    return [(v, resident[v]) for v in nodes]
