"""Greedy file-eviction heuristics for the MinIO problem (Section V-B).

When the next node ``j`` of a traversal does not fit in the available main
memory, a volume ``IOReq(j)`` of already-produced files must be written to
secondary memory.  Because choosing *which* files to write is NP-complete even
for a fixed traversal (Theorem 2(i)), the paper introduces six greedy
selection policies.  Every policy receives the candidate files ordered by
*latest scheduled first* -- the file whose owner executes furthest in the
future comes first -- and returns the list of victims to evict.

The six policies:

``lsnf``
    *Last Scheduled Node First*: evict files in candidate order until the
    freed volume reaches ``IOReq``.  Optimal for the divisible relaxation of
    MinIO.
``first_fit``
    The first candidate whose size is at least ``IOReq``; fall back to LSNF
    when no single file is large enough.
``best_fit``
    The candidate whose size is closest to the remaining requirement;
    repeated until enough space is freed.
``first_fill``
    The first candidate strictly smaller than the remaining requirement;
    repeated, with an LSNF fallback when no such file exists.
``best_fill``
    The candidate closest to the remaining requirement among those strictly
    smaller than it; repeated, with an LSNF fallback.
``best_k_combination``
    Among the first ``K`` candidates (``K = 5`` as in the paper), the subset
    whose total size is closest to the remaining requirement; repeated until
    enough space is freed.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left
from typing import Callable, Dict, Hashable, List, Sequence, Tuple

__all__ = [
    "HEURISTICS",
    "select_lsnf",
    "select_first_fit",
    "select_best_fit",
    "select_first_fill",
    "select_best_fill",
    "select_best_k_combination",
    "get_heuristic",
]

NodeId = Hashable
Candidate = Tuple[NodeId, float]
Selector = Callable[[Sequence[Candidate], float], List[NodeId]]

_EPS = 1e-12


def select_lsnf(candidates: Sequence[Candidate], io_req: float) -> List[NodeId]:
    """Evict the latest-used files first until ``io_req`` is covered."""
    victims: List[NodeId] = []
    freed = 0.0
    for node, size in candidates:
        if freed >= io_req - _EPS:
            break
        victims.append(node)
        freed += size
    return victims


def select_first_fit(candidates: Sequence[Candidate], io_req: float) -> List[NodeId]:
    """Evict the first file large enough on its own; LSNF fallback."""
    if io_req <= _EPS:
        return []
    for node, size in candidates:
        if size >= io_req - _EPS:
            return [node]
    return select_lsnf(candidates, io_req)


def select_best_fit(candidates: Sequence[Candidate], io_req: float) -> List[NodeId]:
    """Repeatedly evict the file whose size is closest to the remaining need.

    Sorted-structure implementation: candidates live in one list sorted by
    ``(size, position)``, so the file nearest the remaining requirement is a
    :func:`bisect.bisect_left` away -- the closest size is either the
    largest one below the need or the smallest one at/above it, and within
    an equal-size run the leftmost entry has the earliest candidate
    position, which is exactly the tie-break of the original linear-scan
    version (closest size first, then earliest candidate).  One O(n log n)
    sort plus O(log n) per eviction replaces the O(n) ``min`` scan and
    ``list.pop`` per victim; victim order is identical.
    """
    victims: List[NodeId] = []
    need = io_req
    if need <= _EPS or not candidates:
        return victims
    entries = sorted((size, pos) for pos, (_, size) in enumerate(candidates))
    while need > _EPS and entries:
        k = bisect_left(entries, (need, -1))  # first entry with size >= need
        if k == len(entries):
            chosen = entries[-1][0]  # every size < need: largest is closest
        elif k == 0:
            chosen = entries[0][0]  # every size >= need: smallest is closest
        else:
            s_below, s_above = entries[k - 1][0], entries[k][0]
            if need - s_below < s_above - need:
                chosen = s_below
            elif s_above - need < need - s_below:
                chosen = s_above
            else:
                # equidistant sizes: the original picks the earliest
                # candidate position across both equal-size runs; each
                # run's leftmost entry carries its smallest position
                lo_below = bisect_left(entries, (s_below, -1))
                chosen = (
                    s_below if entries[lo_below][1] < entries[k][1] else s_above
                )
        start = bisect_left(entries, (chosen, -1))  # leftmost of the run
        size, pos = entries.pop(start)
        victims.append(candidates[pos][0])
        need -= size
    return victims


def select_first_fill(candidates: Sequence[Candidate], io_req: float) -> List[NodeId]:
    """Repeatedly evict the first file strictly smaller than the remaining
    need; fall back to LSNF on whatever is left."""
    remaining = list(candidates)
    victims: List[NodeId] = []
    need = io_req
    while need > _EPS and remaining:
        idx = next(
            (k for k, (_, size) in enumerate(remaining) if size < need - _EPS), None
        )
        if idx is None:
            victims.extend(select_lsnf(remaining, need))
            return victims
        node, size = remaining.pop(idx)
        victims.append(node)
        need -= size
    return victims


def select_best_fill(candidates: Sequence[Candidate], io_req: float) -> List[NodeId]:
    """Repeatedly evict the largest file strictly smaller than the remaining
    need (the one that "fills" it best); fall back to LSNF.

    Sorted-structure implementation, mirroring :func:`select_best_fit`: the
    best filler is the entry just left of ``bisect_left(need - eps)``, and
    the leftmost entry of its equal-size run carries the earliest candidate
    position (the original's tie-break).  The LSNF fallback must see the
    *surviving* candidates in their original order, so evictions also flip
    an alive flag indexed by position.  Victim order is identical to the
    original quadratic version.
    """
    victims: List[NodeId] = []
    need = io_req
    if need <= _EPS or not candidates:
        return victims
    entries = sorted((size, pos) for pos, (_, size) in enumerate(candidates))
    alive = [True] * len(candidates)
    while need > _EPS and entries:
        k = bisect_left(entries, (need - _EPS, -1))  # entries[:k]: size < need-eps
        if k == 0:
            # nothing strictly smaller than the need: LSNF over the
            # survivors, in original candidate order
            freed = 0.0
            for pos, (node, size) in enumerate(candidates):
                if not alive[pos]:
                    continue
                if freed >= need - _EPS:
                    break
                victims.append(node)
                freed += size
            return victims
        chosen = entries[k - 1][0]  # the largest eligible size
        start = bisect_left(entries, (chosen, -1))  # leftmost of its run
        size, pos = entries.pop(start)
        alive[pos] = False
        victims.append(candidates[pos][0])
        need -= size
    return victims


def select_best_k_combination(
    candidates: Sequence[Candidate], io_req: float, k: int = 5
) -> List[NodeId]:
    """Among the first ``k`` candidates, evict the subset whose total size is
    closest to the remaining need; repeat until enough space is freed.

    Subsets whose total covers the need are preferred over subsets that fall
    short by the same margin, and smaller subsets win ties, so the policy
    makes progress at every step.
    """
    remaining = list(candidates)
    victims: List[NodeId] = []
    need = io_req
    while need > _EPS and remaining:
        window = remaining[:k]
        best_subset: Tuple[int, ...] = ()
        best_key = None
        for r in range(1, len(window) + 1):
            for combo in itertools.combinations(range(len(window)), r):
                total = sum(window[i][1] for i in combo)
                covers = total >= need - _EPS
                key = (abs(total - need), 0 if covers else 1, len(combo), combo)
                if best_key is None or key < best_key:
                    best_key = key
                    best_subset = combo
        chosen = set(best_subset)
        freed = 0.0
        for i in sorted(chosen, reverse=True):
            node, size = window[i]
            victims.append(node)
            freed += size
            remaining.pop(i)
        need -= freed
    return victims


HEURISTICS: Dict[str, Selector] = {
    "lsnf": select_lsnf,
    "first_fit": select_first_fit,
    "best_fit": select_best_fit,
    "first_fill": select_first_fill,
    "best_fill": select_best_fill,
    "best_k_combination": select_best_k_combination,
}


def get_heuristic(name: str) -> Selector:
    """Look up an eviction heuristic by name (see :data:`HEURISTICS`)."""
    try:
        return HEURISTICS[name]
    except KeyError as exc:
        raise ValueError(
            f"unknown MinIO heuristic {name!r}; expected one of {sorted(HEURISTICS)}"
        ) from exc
