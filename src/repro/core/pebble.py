"""Pebble-game corner cases of the MinMemory / MinIO problems.

Section II-B of the paper relates the tree-traversal problems to classical
pebble games:

* With ``f_i = 1`` and ``n_i = 0`` under the *replacement* rule, MinMemory is
  the register-allocation problem of Sethi & Ullman (1970): the minimum
  number of registers needed to evaluate an expression tree equals the
  Sethi--Ullman label of its root, and an optimal order is a postorder.
* With unit-size files, MinIO becomes the I/O pebble game of Hong & Kung
  (1981).  For a *fixed* traversal with unit files, the optimal eviction rule
  is Belady's furthest-in-future rule, which coincides with the paper's LSNF
  heuristic; MinIO with arbitrary file sizes is NP-hard (Theorem 2).

These special cases are used as analytically-known ground truth in the test
suite.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from .builders import from_replacement_model, uniform_weights
from .traversal import TOPDOWN, Traversal, TraversalError, is_topological
from .tree import Tree

__all__ = [
    "sethi_ullman_labels",
    "sethi_ullman_number",
    "unit_replacement_tree",
    "belady_io_volume",
]

NodeId = Hashable


def sethi_ullman_labels(tree: Tree) -> Dict[NodeId, int]:
    """Sethi--Ullman register labels of every node.

    The classical definition applies to expression trees where every internal
    node has at most two children: a leaf gets label 1; an internal node with
    children labels ``l1 >= l2`` gets ``l1`` if ``l1 > l2`` and ``l1 + 1`` if
    ``l1 == l2``.  For nodes of higher arity we use the standard
    generalisation ``max_k (l_k + k - 1)`` over children sorted by decreasing
    label, which reduces to the binary rule when the arity is at most two.
    """
    labels: Dict[NodeId, int] = {}
    for node in tree.bottom_up_order():
        children = tree.children(node)
        if not children:
            labels[node] = 1
            continue
        child_labels = sorted((labels[c] for c in children), reverse=True)
        labels[node] = max(lab + k for k, lab in enumerate(child_labels))
    return labels


def sethi_ullman_number(tree: Tree) -> int:
    """Sethi--Ullman label of the root: minimum registers for the tree."""
    return sethi_ullman_labels(tree)[tree.root]


def unit_replacement_tree(tree: Tree) -> Tree:
    """Unit-weight replacement-model instance with the shape of ``tree``.

    Every node gets ``f = 1``; the replacement rule
    (``MemReq = max(f_i, sum_j f_j)``) is encoded through the negative-``n``
    reduction of Figure 1.  The MinMemory value of the returned tree equals
    the classical pebble number of the tree shape, e.g. the Sethi--Ullman
    number for binary trees.
    """
    return from_replacement_model(uniform_weights(tree, f=1.0, n=0.0))


def belady_io_volume(tree: Tree, memory: float, traversal: Traversal) -> float:
    """I/O volume of Belady's eviction rule for unit-size files.

    The traversal is fixed; whenever memory overflows, the resident file whose
    owner executes furthest in the future is written out.  For unit-size files
    this rule minimises the number of evictions (Belady, 1966), hence the I/O
    volume; it coincides with the LSNF heuristic of Section V-B.

    Parameters
    ----------
    tree:
        Task tree; every ``f`` must equal 1 and every ``n`` equal 0 for the
        optimality claim to hold (the function itself works for any weights).
    memory:
        Main memory size; must be at least ``max_i MemReq(i)``.
    traversal:
        A topological traversal (either convention; bottom-up is reversed).

    Returns
    -------
    float
        Total size written to secondary memory.
    """
    traversal = traversal.as_convention(TOPDOWN)
    if not is_topological(tree, traversal):
        raise TraversalError("traversal violates precedence constraints")
    if memory < tree.max_mem_req():
        raise ValueError("memory is below the largest single-node requirement")

    pos = traversal.position()
    resident: Dict[NodeId, float] = {tree.root: tree.f(tree.root)}
    on_disk: set = set()
    io = 0.0
    for node in traversal.order:
        if node in on_disk:
            on_disk.discard(node)
            resident[node] = tree.f(node)
        need = tree.n(node) + sum(tree.f(c) for c in tree.children(node))
        # evict until the execution fits, furthest-future-use first
        while sum(resident.values()) + need > memory + 1e-12:
            victims = [v for v in resident if v != node]
            if not victims:
                raise ValueError("infeasible: cannot free enough memory")
            victim = max(victims, key=lambda v: pos[v])
            io += resident.pop(victim)
            on_disk.add(victim)
        resident.pop(node, None)
        for child in tree.children(node):
            resident[child] = tree.f(child)
    return io
