"""Task-tree model of the paper.

A :class:`Tree` is a rooted tree whose nodes are tasks.  Following the paper
(Section III-A), each node ``i`` carries two weights:

* ``f(i)`` -- the size of the *communication file* exchanged with its parent.
  In the top-down (out-tree) reading this is the input file received from the
  parent; in the bottom-up (in-tree) reading -- the natural one for assembly
  trees of the multifrontal method -- it is the output file (contribution
  block) sent to the parent.
* ``n(i)`` -- the size of the *execution file* (the frontal matrix / program
  data) which only lives in memory while the task executes.

The memory requirement of node ``i`` is

``MemReq(i) = f(i) + n(i) + sum(f(j) for j in children(i))``

which is the amount of main memory that must be simultaneously available while
``i`` executes (Equation (1) of the paper).

Node identifiers are arbitrary hashable objects (integers in practice).  The
structure is mutable while being built and is expected to be treated as frozen
once handed to the traversal algorithms.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Tree", "TreeValidationError"]

NodeId = Hashable


def _as_float_list(values, p: int) -> list:
    """Per-node weights as a plain list of floats (bulk-converting numpy)."""
    if values is None:
        return [0.0] * p
    if hasattr(values, "astype"):  # numpy fast path: one vectorized cast
        return values.astype(float, copy=False).tolist()
    return [float(x) for x in values]


class TreeValidationError(ValueError):
    """Raised when a :class:`Tree` violates a structural invariant."""


class Tree:
    """A rooted task tree with file sizes ``f`` and execution sizes ``n``.

    Parameters
    ----------
    root_file:
        Size of the communication file of the root.  For assembly trees the
        root has no parent; the multifrontal method writes its factor columns
        straight to secondary storage, so the natural value is ``0``.

    Examples
    --------
    >>> t = Tree()
    >>> t.add_node(0, f=1.0, n=0.0)          # root (returns the id, chainable)
    0
    >>> t.add_node(1, parent=0, f=2.0, n=1.0)
    1
    >>> t.add_node(2, parent=0, f=3.0, n=0.5)
    2
    >>> t.mem_req(0)
    6.0
    """

    __slots__ = (
        "_parent",
        "_children",
        "_f",
        "_n",
        "_root",
        "_kernel",
        "_base_kernel",
        "_patches",
    )

    def __init__(self) -> None:
        self._parent: Dict[NodeId, Optional[NodeId]] = {}
        self._children: Dict[NodeId, List[NodeId]] = {}
        self._f: Dict[NodeId, float] = {}
        self._n: Dict[NodeId, float] = {}
        self._root: Optional[NodeId] = None
        self._kernel = None  # cached TreeKernel; invalidated on mutation
        # mutation journal: when a cached kernel is invalidated, it moves to
        # _base_kernel and the mutations are recorded as patch ops, so the
        # next kernel() call can patch the flat arrays instead of re-walking
        # the node dictionaries (and so the incremental solvers know which
        # root paths changed).  Both stay None until a kernel exists.
        self._base_kernel = None
        self._patches: Optional[list] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: NodeId,
        *,
        parent: Optional[NodeId] = None,
        f: float = 0.0,
        n: float = 0.0,
    ) -> NodeId:
        """Add a node to the tree.

        The first node added without a parent becomes the root.  A parent, if
        given, must already be part of the tree.

        Parameters
        ----------
        node:
            Identifier of the new node.
        parent:
            Identifier of the parent node, or ``None`` for the root.
        f:
            Size of the communication file exchanged with the parent.
        n:
            Size of the execution file.

        Returns
        -------
        The identifier of the node just added (for chaining convenience).
        """
        if node in self._parent:
            raise TreeValidationError(f"node {node!r} already present")
        if parent is None:
            if self._root is not None:
                raise TreeValidationError(
                    f"tree already has a root ({self._root!r}); "
                    f"node {node!r} must specify a parent"
                )
            self._root = node
        else:
            if parent not in self._parent:
                raise TreeValidationError(f"parent {parent!r} not in tree")
            self._children[parent].append(node)
        self._parent[node] = parent
        self._children[node] = []
        self._f[node] = float(f)
        self._n[node] = float(n)
        self._note_mutation(("add", node, parent, self._f[node], self._n[node]))
        return node

    @classmethod
    def from_parents(
        cls,
        parents: Sequence[int],
        f: Optional[Sequence[float]] = None,
        n: Optional[Sequence[float]] = None,
        *,
        ids: Optional[Sequence[NodeId]] = None,
        build_kernel: bool = False,
    ) -> "Tree":
        """Bulk-build a tree from a topologically-ordered parent array.

        This is the fast path the generators and the kernel use: one pass of
        direct dictionary fills instead of a per-node :meth:`add_node` call
        with its membership checks.

        Parameters
        ----------
        parents : sequence of int
            ``parents[i]`` is the index of the parent of node ``i`` and must
            be smaller than ``i``; entry ``0`` must be ``-1`` (or ``None``),
            marking the root.  For unordered parent arrays use
            :func:`repro.core.builders.from_parent_list`, which topologically
            sorts and fully validates its input.
        f, n : sequence of float, optional
            Per-node weights (default ``0.0``).
        ids : sequence, optional
            Node identifiers (default ``0 .. p-1``); must be unique.
        build_kernel : bool, optional
            When True, also build the :class:`~repro.core.kernel.TreeKernel`
            straight from the same arrays and cache it on the tree.  The
            input is already a topological labeling -- exactly what the
            kernel constructor wants -- so this skips the BFS relabeling pass
            a later :meth:`kernel` call would pay.  Children orders are
            identical either way.

        Returns
        -------
        Tree
            A tree whose node-insertion order is ``ids`` (top-down).

        Examples
        --------
        >>> t = Tree.from_parents([-1, 0, 0, 1], f=[0.0, 2.0, 3.0, 1.0])
        >>> t.root, t.children(0)
        (0, (1, 2))
        """
        p = len(parents)
        if p == 0:
            raise TreeValidationError("parents must not be empty")
        if hasattr(parents, "tolist"):  # numpy fast path: one bulk conversion
            parents = parents.tolist()
        fvals = _as_float_list(f, p)
        nvals = _as_float_list(n, p)
        if len(fvals) != p or len(nvals) != p:
            raise TreeValidationError("parents, f and n must have the same length")
        labels: Sequence[NodeId] = range(p) if ids is None else ids
        if len(labels) != p:
            raise TreeValidationError("ids must have the same length as parents")
        tree = cls()
        parent_map = tree._parent
        children_map = tree._children
        f_map = tree._f
        n_map = tree._n
        for i in range(p):
            node = labels[i]
            par = parents[i]
            if par is None or par == -1:
                if tree._root is not None:
                    raise TreeValidationError("parent array has multiple roots")
                tree._root = node
                parent_map[node] = None
            else:
                par = int(par)
                if not 0 <= par < i:
                    raise TreeValidationError(
                        f"parents[{i}] = {par} breaks the topological ordering"
                    )
                parent_id = labels[par]
                parent_map[node] = parent_id
                children_map[parent_id].append(node)
            children_map[node] = []
            f_map[node] = fvals[i]
            n_map[node] = nvals[i]
        if len(parent_map) != p:
            raise TreeValidationError("ids contains duplicates")
        if tree._root is None:
            raise TreeValidationError("parent array has no root entry")
        if build_kernel:
            from .kernel import TreeKernel

            normalized = [-1 if x is None else int(x) for x in parents]
            tree._kernel = TreeKernel(normalized, fvals, nvals, ids=list(labels))
        return tree

    def set_f(self, node: NodeId, value: float) -> None:
        """Set the communication-file size of ``node``."""
        self._require(node)
        self._f[node] = float(value)
        self._note_mutation(("f", node, self._f[node]))

    def set_n(self, node: NodeId, value: float) -> None:
        """Set the execution-file size of ``node``."""
        self._require(node)
        self._n[node] = float(value)
        self._note_mutation(("n", node, self._n[node]))

    def _note_mutation(self, op: tuple) -> None:
        """Invalidate the cached kernel, journaling the mutation.

        The first mutation after a kernel was built moves that kernel aside
        as the patch base; subsequent mutations append to the journal.  Past
        a size-proportional threshold the journal is dropped -- patching
        would no longer beat a from-scratch rebuild, and the incremental
        solvers' dirty set would approach the whole tree anyway.
        """
        if self._kernel is not None:
            self._base_kernel = self._kernel
            self._kernel = None
            self._patches = [op]
        elif self._patches is not None:
            self._patches.append(op)
            if len(self._patches) > max(16, self._base_kernel.size // 8):
                self._base_kernel = None
                self._patches = None

    def kernel(self):
        """The cached :class:`~repro.core.kernel.TreeKernel` of this tree.

        The flat array-backed form every solver hot path runs on.  Built on
        first access and cached; any mutation (:meth:`add_node`,
        :meth:`set_f`, :meth:`set_n`) invalidates the cache, so the kernel
        always reflects the current tree.

        After a short run of mutations the rebuild is incremental: the
        previous kernel's flat arrays are patched via
        :meth:`~repro.core.kernel.TreeKernel.patched` instead of re-walking
        the node dictionaries, and the resulting kernel carries the dirty
        root-path set that lets ``solve(..., reuse=report)`` re-solve only
        the affected nodes.  Long mutation runs fall back to a from-scratch
        build; either way the kernel reflects the current tree exactly.

        Returns
        -------
        TreeKernel
            Contiguous parent/children-CSR arrays plus precomputed
            ``mem_req`` / children-file sums (see :mod:`repro.core.kernel`).
        """
        if self._kernel is None:
            from .kernel import TreeKernel

            base, patches = self._base_kernel, self._patches
            self._base_kernel = None
            self._patches = None
            if base is not None and patches:
                self._kernel = base.patched(patches)
            else:
                self._kernel = TreeKernel.from_tree(self)
        return self._kernel

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def root(self) -> NodeId:
        """Identifier of the root node."""
        if self._root is None:
            raise TreeValidationError("empty tree has no root")
        return self._root

    @property
    def size(self) -> int:
        """Number of nodes (``p`` in the paper)."""
        return len(self._parent)

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._parent

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._parent)

    def nodes(self) -> List[NodeId]:
        """All node identifiers, in insertion order."""
        return list(self._parent)

    def parent(self, node: NodeId) -> Optional[NodeId]:
        """Parent of ``node`` (``None`` for the root)."""
        self._require(node)
        return self._parent[node]

    def children(self, node: NodeId) -> Tuple[NodeId, ...]:
        """Children of ``node`` in insertion order."""
        self._require(node)
        return tuple(self._children[node])

    def f(self, node: NodeId) -> float:
        """Communication-file size of ``node``."""
        self._require(node)
        return self._f[node]

    def n(self, node: NodeId) -> float:
        """Execution-file size of ``node``."""
        self._require(node)
        return self._n[node]

    def is_leaf(self, node: NodeId) -> bool:
        """True when ``node`` has no children."""
        self._require(node)
        return not self._children[node]

    def leaves(self) -> List[NodeId]:
        """All leaves, in insertion order."""
        return [v for v in self._parent if not self._children[v]]

    def mem_req(self, node: NodeId) -> float:
        """Memory requirement ``MemReq`` of ``node`` (Equation (1))."""
        self._require(node)
        return (
            self._f[node]
            + self._n[node]
            + sum(self._f[c] for c in self._children[node])
        )

    def max_mem_req(self) -> float:
        """``max_i MemReq(i)``, the trivial lower bound on main memory."""
        return max(self.mem_req(v) for v in self._parent)

    def total_file_size(self) -> float:
        """Sum of all communication-file sizes (upper bound on I/O volume)."""
        return sum(self._f.values())

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def ancestors(self, node: NodeId) -> List[NodeId]:
        """Proper ancestors of ``node`` from parent up to the root."""
        self._require(node)
        out: List[NodeId] = []
        cur = self._parent[node]
        while cur is not None:
            out.append(cur)
            cur = self._parent[cur]
        return out

    def depth(self, node: NodeId) -> int:
        """Number of edges between ``node`` and the root."""
        self._require(node)
        count = 0
        cur = self._parent[node]
        while cur is not None:
            count += 1
            cur = self._parent[cur]
        return count

    def depths(self) -> Dict[NodeId, int]:
        """Depth of every node, computed in a single top-down pass.

        Prefer this over per-node :meth:`depth` calls when several depths are
        needed: one parent-chain walk per node is quadratic on the deep chain
        trees of the paper's Section VI workloads.
        """
        if self._root is None:
            return {}
        depth: Dict[NodeId, int] = {self._root: 0}
        for node in self.topological_order():
            below = depth[node] + 1
            for child in self._children[node]:
                depth[child] = below
        return depth

    def height(self) -> int:
        """Length (in edges) of the longest root-to-leaf path."""
        if self._root is None:
            return 0
        return max(self.depths().values())

    def subtree_nodes(self, node: NodeId) -> List[NodeId]:
        """Nodes of the subtree rooted at ``node`` in BFS order."""
        self._require(node)
        out: List[NodeId] = []
        queue: deque = deque([node])
        while queue:
            v = queue.popleft()
            out.append(v)
            queue.extend(self._children[v])
        return out

    def subtree_size(self, node: NodeId) -> int:
        """Number of nodes of the subtree rooted at ``node``."""
        return len(self.subtree_nodes(node))

    def topological_order(self) -> List[NodeId]:
        """Nodes in a top-down order (every parent before its children)."""
        return self.subtree_nodes(self.root)

    def bottom_up_order(self) -> List[NodeId]:
        """Nodes in a bottom-up order (every child before its parent)."""
        return list(reversed(self.topological_order()))

    def postorder_dfs(self, child_order: Optional[Dict[NodeId, Sequence[NodeId]]] = None) -> List[NodeId]:
        """Bottom-up depth-first (postorder) node sequence.

        Parameters
        ----------
        child_order:
            Optional mapping from node to the sequence of its children in the
            order their subtrees should be processed.  Missing nodes fall
            back to insertion order.
        """
        order: List[NodeId] = []
        # iterative DFS to avoid recursion limits on deep trees (chains)
        stack: List[Tuple[NodeId, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            stack.append((node, True))
            children = (
                child_order[node]
                if child_order is not None and node in child_order
                else self._children[node]
            )
            for child in reversed(list(children)):
                stack.append((child, False))
        return order

    # ------------------------------------------------------------------
    # copies and transformations
    # ------------------------------------------------------------------
    def copy(self) -> "Tree":
        """Deep copy of the tree structure and weights."""
        other = Tree()
        for node in self.topological_order():
            other.add_node(
                node,
                parent=self._parent[node],
                f=self._f[node],
                n=self._n[node],
            )
        return other

    def relabeled(self) -> Tuple["Tree", Dict[NodeId, int]]:
        """Return a copy with nodes relabeled ``0..p-1`` in top-down order.

        Returns the relabeled tree and the mapping ``old id -> new id``.
        """
        mapping: Dict[NodeId, int] = {}
        for idx, node in enumerate(self.topological_order()):
            mapping[node] = idx
        other = Tree()
        for node in self.topological_order():
            parent = self._parent[node]
            other.add_node(
                mapping[node],
                parent=None if parent is None else mapping[parent],
                f=self._f[node],
                n=self._n[node],
            )
        return other, mapping

    def to_networkx(self):
        """Export as a :class:`networkx.DiGraph` with edges parent -> child.

        Node attributes ``f`` and ``n`` carry the weights.
        """
        import networkx as nx

        g = nx.DiGraph()
        for node in self.topological_order():
            g.add_node(node, f=self._f[node], n=self._n[node])
        for node in self.topological_order():
            for child in self._children[node]:
                g.add_edge(node, child)
        return g

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`TreeValidationError`.

        Verified invariants: a single root exists, every non-root node has a
        parent inside the tree, the parent/children maps are mutually
        consistent, the tree is connected and acyclic, and all file sizes are
        finite with ``f >= 0`` (``n`` may be negative: the replacement-model
        reduction of Figure 1 uses negative execution files).
        """
        if self._root is None:
            raise TreeValidationError("tree is empty")
        seen = set(self.subtree_nodes(self._root))
        if len(seen) != len(self._parent):
            raise TreeValidationError("tree is not connected (unreachable nodes)")
        for node, parent in self._parent.items():
            if parent is None:
                if node != self._root:
                    raise TreeValidationError(f"non-root node {node!r} has no parent")
            else:
                if node not in self._children[parent]:
                    raise TreeValidationError(
                        f"parent/children maps disagree for {node!r}"
                    )
        for node in self._parent:
            fval, nval = self._f[node], self._n[node]
            if not (fval == fval and abs(fval) != float("inf")):
                raise TreeValidationError(f"non-finite f for node {node!r}")
            if fval < 0:
                raise TreeValidationError(f"negative file size for node {node!r}")
            if not (nval == nval and abs(nval) != float("inf")):
                raise TreeValidationError(f"non-finite n for node {node!r}")
            if self.mem_req(node) < 0:
                raise TreeValidationError(
                    f"negative memory requirement for node {node!r}"
                )

    # ------------------------------------------------------------------
    # dunder helpers
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tree(p={self.size}, root={self._root!r})"

    def __getstate__(self):
        # the cached kernel travels with the tree (workers skip rebuilding
        # it), but the mutation journal does not: an unpickled tree simply
        # rebuilds its kernel from scratch on the next kernel() call
        return {
            "_parent": self._parent,
            "_children": self._children,
            "_f": self._f,
            "_n": self._n,
            "_root": self._root,
            "_kernel": self._kernel,
        }

    def __setstate__(self, state) -> None:
        for key, value in state.items():
            setattr(self, key, value)
        self._base_kernel = None
        self._patches = None

    def _require(self, node: NodeId) -> None:
        if node not in self._parent:
            raise TreeValidationError(f"unknown node {node!r}")

    # ------------------------------------------------------------------
    # equality (structure + weights)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tree):
            return NotImplemented
        return (
            self._root == other._root
            and self._parent == other._parent
            and {k: list(v) for k, v in self._children.items()}
            == {k: list(v) for k, v in other._children.items()}
            and self._f == other._f
            and self._n == other._n
        )

    def __hash__(self) -> int:  # Trees are mutable; keep them unhashable.
        raise TypeError("Tree objects are mutable and unhashable")

    # ------------------------------------------------------------------
    # iteration over edges
    # ------------------------------------------------------------------
    def edges(self) -> Iterable[Tuple[NodeId, NodeId]]:
        """Iterate over (parent, child) edges in top-down order."""
        for node in self.topological_order():
            for child in self._children[node]:
                yield node, child
