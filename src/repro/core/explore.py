"""The ``Explore`` algorithm (paper Algorithm 3).

``Explore`` performs a top-down exploration of a (sub)tree with a prescribed
amount of available memory.  Starting from a node whose communication file is
resident, it greedily descends: a node of the current *cut* (the frontier of
input files still resident in memory) is expanded whenever the available
memory allows, and the expansion replaces the node's file by the files of its
own best cut whenever this shrinks the resident size (``M_j <= f_j``).  When
no further progress is possible the algorithm returns

* ``M_i`` -- the smallest resident-memory state reachable in the subtree,
* ``L_i`` -- the corresponding cut (set of input files still resident),
* ``Tr_i`` -- a partial traversal reaching that state, and
* ``M_peak_i`` -- the smallest amount of available memory that would allow
  one more node of the subtree to be visited.

The :class:`ExploreSolver` keeps per-node *resume states* so that a later
exploration of the same node with more memory continues from where the
previous one stopped instead of starting from scratch -- this is the
``L_init`` / ``Tr_init`` mechanism of the paper, generalised to every node,
and it is what makes :func:`repro.core.minmem.min_mem` fast in practice.
Setting ``reuse_states=False`` reproduces the literal pseudocode: between two
top-level calls only the entry node's reached state (``L_init`` /
``Tr_init``) survives, and everything below it is re-explored.

The recursion of Algorithm 3 is replaced by a generator-based trampoline so
that arbitrarily deep trees (long chains) do not hit the interpreter recursion
limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from .tree import Tree

__all__ = ["ExploreResult", "ExploreSolver"]

NodeId = Hashable

#: absolute tolerance for memory comparisons; file sizes are user-scale
#: quantities (bytes, matrix entries), so accumulated rounding noise is many
#: orders of magnitude below this threshold while genuine differences are not.
_EPS = 1e-9


@dataclass(frozen=True)
class ExploreResult:
    """Outcome of one ``Explore`` call.

    Attributes
    ----------
    resident:
        ``M_i`` -- total size of the files in the returned cut, i.e. the
        minimum resident memory reachable in the subtree with the given
        available memory (``inf`` when the subtree root itself cannot run).
    cut:
        ``L_i`` -- the frontier nodes whose input files are still resident.
    traversal_chunks:
        Nested chunks of node identifiers; flatten with
        :func:`repro.core.liu.flatten_nodes` to get the partial traversal.
    peak:
        ``M_peak_i`` -- minimum available memory needed to visit one more node
        of the subtree (``inf`` when the subtree is completely processed).
    required:
        Peak memory actually used by the returned partial traversal, assuming
        only the subtree root's file was resident initially.  Replaying the
        traversal needs exactly this much available memory.
    """

    resident: float
    cut: Tuple[NodeId, ...]
    traversal_chunks: tuple
    peak: float
    required: float


@dataclass
class _ResumeState:
    """Best state reached so far for one subtree (resume information)."""

    cut: List[NodeId] = field(default_factory=list)
    chunks: List = field(default_factory=list)
    required: float = 0.0


class ExploreSolver:
    """Stateful driver for repeated ``Explore`` calls on the same tree."""

    def __init__(self, tree: Tree, *, reuse_states: bool = True) -> None:
        tree.validate()
        self.tree = tree
        self.reuse_states = reuse_states
        # Minimum memory needed to visit one more node in the subtree of v,
        # given that f_v is resident.  For a never-expanded node this is
        # exactly MemReq(v), because v itself must be visited first.
        self._peak_of: Dict[NodeId, float] = {
            v: tree.mem_req(v) for v in tree.nodes()
        }
        self._states: Dict[NodeId, _ResumeState] = {}
        self.explore_calls = 0
        self.nodes_visited = 0

    # ------------------------------------------------------------------
    def peak_of(self, node: NodeId) -> float:
        """Current estimate of the memory needed to progress below ``node``."""
        return self._peak_of[node]

    def explore(self, node: NodeId, m_avail: float) -> ExploreResult:
        """Run ``Explore`` from ``node`` with ``m_avail`` available memory."""
        if not self.reuse_states:
            # Faithful Algorithm 4: only the entry node resumes from the state
            # reached by the previous top-level call (the L_init / Tr_init
            # arguments); every other node is re-explored from scratch, so the
            # refined peak estimates of previous calls are discarded as well.
            kept = self._states.get(node)
            self._states = {} if kept is None else {node: kept}
            self._peak_of = {v: self.tree.mem_req(v) for v in self.tree.nodes()}
        stack = [self._explore_gen(node, m_avail)]
        result: Optional[ExploreResult] = None
        while stack:
            gen = stack[-1]
            try:
                request = gen.send(result)
            except StopIteration as stop:  # generator returned its result
                result = stop.value
                stack.pop()
                continue
            child, child_avail = request
            stack.append(self._explore_gen(child, child_avail))
            result = None
        assert result is not None
        return result

    # ------------------------------------------------------------------
    # Algorithm 3, written as a generator yielding (child, avail) requests
    # ------------------------------------------------------------------
    def _explore_gen(self, node: NodeId, m_avail: float):
        tree = self.tree
        f = tree.f
        peak_of = self._peak_of
        self.explore_calls += 1
        mem_req = tree.mem_req(node)

        state = self._states.get(node)
        resumable = state is not None and state.required <= m_avail + _EPS

        if not resumable and mem_req > m_avail + _EPS:
            # The node itself cannot be executed (paper lines 3-5).
            return ExploreResult(math.inf, (), (), mem_req, 0.0)

        if resumable:
            cut: List[NodeId] = list(state.cut)
            chunks: List = list(state.chunks)
            required = state.required
        else:
            # Execute the node itself (paper lines 10-11).
            cut = list(tree.children(node))
            chunks = [node]
            required = mem_req
            self.nodes_visited += 1

        while cut:
            total = sum(f(j) for j in cut)
            candidates = [
                j for j in cut if m_avail - (total - f(j)) >= peak_of[j] - _EPS
            ]
            if not candidates:
                break
            for j in candidates:
                rest = sum(f(k) for k in cut) - f(j)
                sub: ExploreResult = yield (j, m_avail - rest)
                peak_of[j] = sub.peak
                if sub.resident <= f(j) + _EPS:
                    # Merge the child's cut in place of the child (lines 16-18).
                    idx = cut.index(j)
                    cut[idx : idx + 1] = list(sub.cut)
                    chunks.append(sub.traversal_chunks)
                    required = max(required, rest + sub.required)

        resident = sum(f(j) for j in cut)
        if cut:
            peak = min(peak_of[j] + (resident - f(j)) for j in cut)
        else:
            peak = math.inf
        self._states[node] = _ResumeState(
            cut=list(cut), chunks=list(chunks), required=required
        )
        return ExploreResult(resident, tuple(cut), tuple(chunks), peak, required)
