"""The ``MinMem`` exact MinMemory algorithm (paper Algorithm 4).

``MinMem`` solves the MinMemory problem exactly: it computes the minimum
amount of main memory that allows a fully in-core traversal of the task tree,
together with such a traversal.  It repeatedly calls
:class:`~repro.core.explore.ExploreSolver`:

1. start with the trivial lower bound ``max_i MemReq(i)``;
2. explore the tree with that much memory, reusing the state reached by the
   previous exploration;
3. if the whole tree could not be processed, the exploration reports the
   smallest memory ``M_peak`` that would allow one more node to be visited;
   set the available memory to ``M_peak`` and repeat.

The memory of the final iteration is optimal, and the recorded traversal is a
witness.  Worst-case complexity is ``O(p^2)`` like Liu's exact algorithm, but
the systematic reuse of reached states makes it considerably faster on
assembly trees (Section VI-C of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from .explore import ExploreSolver
from .liu import flatten_nodes
from .traversal import TOPDOWN, Traversal
from .tree import Tree

__all__ = ["MinMemResult", "min_mem", "min_memory"]

NodeId = Hashable


@dataclass(frozen=True)
class MinMemResult:
    """Result of the ``MinMem`` algorithm.

    Attributes
    ----------
    memory:
        The optimal (minimum) main memory over all traversals.
    traversal:
        An optimal traversal, in top-down convention (the paper's default);
        call ``traversal.reversed()`` for the bottom-up reading.
    iterations:
        Number of ``Explore`` sweeps from the root.
    explore_calls:
        Total number of ``Explore`` invocations (all nodes).
    """

    memory: float
    traversal: Traversal
    iterations: int
    explore_calls: int


def min_memory(
    tree: Tree, *, reuse_states: bool = True, engine: str = "kernel"
) -> float:
    """Minimum memory over all traversals (value only)."""
    return min_mem(tree, reuse_states=reuse_states, engine=engine).memory


def min_mem(
    tree: Tree, *, reuse_states: bool = True, engine: str = "kernel"
) -> MinMemResult:
    """Run the ``MinMem`` algorithm (Algorithm 4 of the paper).

    Parameters
    ----------
    tree : Tree or TreeKernel
        The task tree (a flat :class:`~repro.core.kernel.TreeKernel` is
        accepted directly).
    reuse_states : bool
        When True (default), every node keeps the exploration state it
        reached so far across sweeps and resumes from it, which is the
        behaviour that makes the algorithm fast in practice.  When False,
        only the root's reached state (the ``L_init`` / ``Tr_init`` arguments
        of Algorithm 4) survives between sweeps, exactly as in the paper's
        pseudocode; the result is identical, only slower.
    engine : str
        ``"kernel"`` (default) runs the array-backed
        :func:`repro.core.kernel.kernel_min_mem` (incremental cut sums);
        ``"reference"`` runs the original per-node implementation (kept as
        the test oracle).  Both produce identical results.

    Returns
    -------
    MinMemResult
        Optimal memory and a witness traversal.
    """
    if engine not in ("kernel", "reference"):
        raise ValueError(f"unknown engine {engine!r}; expected 'kernel' or 'reference'")
    if engine == "kernel":
        from .kernel import TreeKernel, kernel_min_mem

        kern = tree if isinstance(tree, TreeKernel) else tree.kernel()
        memory, order_idx, iterations, explore_calls = kernel_min_mem(
            kern, reuse_states=reuse_states
        )
        return MinMemResult(
            memory=memory,
            traversal=Traversal(kern.order_to_ids(order_idx), TOPDOWN),
            iterations=iterations,
            explore_calls=explore_calls,
        )

    if not isinstance(tree, Tree):
        tree = tree.to_tree()
    solver = ExploreSolver(tree, reuse_states=reuse_states)
    root = tree.root

    m_peak = tree.max_mem_req()
    m_avail = 0.0
    iterations = 0
    chunks: tuple = ()

    # Root-level resume (the L_init / Tr_init arguments of Algorithm 4) is
    # always provided by the solver; with reuse_states=True the states of
    # every other node are retained across sweeps as well, which only makes
    # the search faster.
    while m_peak != math.inf:
        m_avail = m_peak
        result = solver.explore(root, m_avail)
        chunks = result.traversal_chunks
        m_peak = result.peak
        iterations += 1
        if m_peak is not math.inf and m_peak <= m_avail:
            # Exploration must always report a strictly larger requirement
            # when it cannot finish; guard against floating-point stalls.
            raise RuntimeError(
                "MinMem made no progress (floating-point stall); "
                f"memory={m_avail}, reported peak={m_peak}"
            )

    order = flatten_nodes(chunks)
    traversal = Traversal(tuple(order), TOPDOWN)
    return MinMemResult(
        memory=m_avail,
        traversal=traversal,
        iterations=iterations,
        explore_calls=solver.explore_calls,
    )
