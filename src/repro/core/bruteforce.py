"""Exhaustive reference solvers used as test oracles.

These solvers enumerate the state space of the traversal problems and are
therefore restricted to small trees (roughly up to 15 nodes for MinMemory and
10 nodes for MinIO).  They provide ground truth against which the polynomial
algorithms (:mod:`repro.core.liu`, :mod:`repro.core.minmem`,
:mod:`repro.core.postorder`) and the MinIO heuristics are validated.

All solvers use the top-down (out-tree) reading; by the reversal argument of
Section III-C their optimal values also hold for the bottom-up reading.
"""

from __future__ import annotations

import itertools
import math
from functools import lru_cache
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from .tree import Tree

__all__ = [
    "optimal_min_memory",
    "optimal_postorder_memory",
    "optimal_min_io",
    "enumerate_topological_orders",
]

NodeId = Hashable

_MAX_BRUTE_NODES = 22


def optimal_min_memory(tree: Tree) -> float:
    """Exact MinMemory value by dynamic programming over cuts.

    The state is the set of *ready* nodes (files produced but not executed).
    From a state, executing any ready node ``i`` costs a transient peak of
    ``resident + n_i + sum_children f`` and leads to the state where ``i`` is
    replaced by its children.  The optimal value is the min-max over all
    execution orders, computed by memoisation over states.
    """
    tree.validate()
    if tree.size > _MAX_BRUTE_NODES:
        raise ValueError(
            f"brute force limited to {_MAX_BRUTE_NODES} nodes, got {tree.size}"
        )
    f = {v: tree.f(v) for v in tree.nodes()}
    n = {v: tree.n(v) for v in tree.nodes()}
    children = {v: tree.children(v) for v in tree.nodes()}

    @lru_cache(maxsize=None)
    def best(state: FrozenSet[NodeId]) -> float:
        if not state:
            return 0.0
        resident = sum(f[v] for v in state)
        value = math.inf
        for node in state:
            peak = resident + n[node] + sum(f[c] for c in children[node])
            nxt = frozenset(state - {node} | set(children[node]))
            value = min(value, max(peak, best(nxt)))
        return value

    return best(frozenset({tree.root}))


def optimal_postorder_memory(tree: Tree) -> float:
    """Exact MinMemory-PostOrder value by enumerating child permutations.

    The peak of a postorder traversal only depends on the order chosen for the
    children of every node, so the optimum is found by brute force over those
    permutations, combined bottom-up.
    """
    tree.validate()

    peaks: Dict[NodeId, float] = {}
    for node in tree.bottom_up_order():
        children = tree.children(node)
        if not children:
            peaks[node] = tree.f(node) + tree.n(node)
            continue
        if len(children) > 8:
            raise ValueError("brute force limited to nodes with at most 8 children")
        best = math.inf
        for perm in itertools.permutations(children):
            completed = 0.0
            peak = 0.0
            for child in perm:
                peak = max(peak, completed + peaks[child])
                completed += tree.f(child)
            peak = max(peak, completed + tree.n(node) + tree.f(node))
            best = min(best, peak)
        peaks[node] = best
    return peaks[tree.root]


def enumerate_topological_orders(tree: Tree) -> List[Tuple[NodeId, ...]]:
    """All top-down topological orders of the tree (exponential; small trees)."""
    tree.validate()
    if tree.size > 10:
        raise ValueError("enumeration limited to 10 nodes")
    orders: List[Tuple[NodeId, ...]] = []

    def recurse(ready: Tuple[NodeId, ...], acc: Tuple[NodeId, ...]) -> None:
        if not ready:
            orders.append(acc)
            return
        for idx, node in enumerate(ready):
            nxt = ready[:idx] + ready[idx + 1 :] + tuple(tree.children(node))
            recurse(nxt, acc + (node,))

    recurse((tree.root,), ())
    return orders


def optimal_min_io(tree: Tree, memory: float) -> float:
    """Exact MinIO value by dynamic programming over (ready set, on-disk set).

    Evictions are, without loss of generality, performed immediately before
    the execution that needs the space, and only files that are currently
    resident and not needed by that execution may be written out.  The state
    space is exponential; the solver is intended for trees of at most ~16
    nodes (the NP-hardness constructions of Theorem 2 use such trees).

    Returns ``inf`` when the tree cannot be processed at all with ``memory``
    (i.e. ``memory < max_i MemReq(i)``).
    """
    tree.validate()
    if tree.size > 16:
        raise ValueError("brute force MinIO limited to 16 nodes")
    f = {v: tree.f(v) for v in tree.nodes()}
    n = {v: tree.n(v) for v in tree.nodes()}
    children = {v: tree.children(v) for v in tree.nodes()}

    @lru_cache(maxsize=None)
    def best(ready: FrozenSet[NodeId], on_disk: FrozenSet[NodeId]) -> float:
        if not ready:
            return 0.0
        value = math.inf
        for node in ready:
            need = n[node] + sum(f[c] for c in children[node]) + f[node]
            # files that could be evicted before executing `node`
            in_memory = [v for v in ready if v not in on_disk and v != node]
            resident_others = sum(f[v] for v in in_memory)
            for r in range(len(in_memory) + 1):
                for combo in itertools.combinations(in_memory, r):
                    freed = sum(f[v] for v in combo)
                    if resident_others - freed + need > memory + 1e-12:
                        continue
                    nxt_ready = frozenset(ready - {node} | set(children[node]))
                    nxt_disk = frozenset((set(on_disk) | set(combo)) & nxt_ready)
                    value = min(value, freed + best(nxt_ready, nxt_disk))
        return value

    return best(frozenset({tree.root}), frozenset())
