"""Array-backed tree kernel: the library's iterative O(n) hot paths.

The dict-based :class:`~repro.core.tree.Tree` is convenient to build and
mutate, but every traversal algorithm pays for it at solve time: each node
visit goes through bound-method calls (``tree.f(v)``, ``tree.children(v)``),
per-call membership checks, and hash lookups keyed by arbitrary node
identifiers.  :class:`TreeKernel` is the flat counterpart the solvers
actually run on:

* nodes are relabeled ``0 .. p-1`` in a top-down topological order (index
  ``0`` is the root, ``range(p-1, -1, -1)`` is a valid bottom-up order);
* the structure lives in contiguous arrays -- a ``parent`` index array and a
  children CSR (``child_ptr`` / ``child_idx``, insertion order preserved);
* the weights (``f``, ``n``) and the derived per-node quantities the hot
  loops need (``mem_req``, ``child_f_sum``) are precomputed float arrays.

On top of the representation this module implements the explicit-stack,
array-based versions of every hot path:

* :func:`kernel_postorder` -- Liu's optimal postorder (and the two naive
  child-ordering rules) by a single bottom-up sweep;
* :func:`kernel_liu` -- Liu's exact hill--valley algorithm with the segment
  merge running on plain float tuples;
* :class:`KernelExploreSolver` / :func:`kernel_min_mem` -- the paper's
  Explore/MinMem pair with incrementally-maintained cut sums (the reference
  implementation recomputes ``sum(f)`` over the cut per candidate, which is
  quadratic in the cut size);
* :func:`kernel_replay_traversal` / :func:`kernel_replay_schedule` -- the
  replay engine's peak-memory/IO recomputation on index arrays;
* :func:`kernel_out_of_core` -- the MinIO eviction simulator with an
  incrementally-maintained resident size.

Nothing here recurses: every sweep is an explicit loop or an explicit stack,
so 100k-node chains are as safe as balanced trees.  The reference (per-node,
dict-based) implementations remain available behind ``engine="reference"``
on the public entry points and serve as the test oracle.

A kernel is built once per tree -- :meth:`Tree.kernel()
<repro.core.tree.Tree.kernel>` caches it and invalidates the cache on
mutation -- so repeated solves (benchmark rounds, algorithm comparisons,
budget sweeps) share a single conversion.

Examples
--------
>>> from repro.core.builders import chain_tree
>>> kern = chain_tree(4, f=1.0, n=1.0).kernel()
>>> kern.size, kern.ids[0]
(4, 0)
>>> kernel_postorder(kern)[0]
3.0
"""

from __future__ import annotations

import math
import weakref
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = [
    "TreeKernel",
    "KernelExploreSolver",
    "flatten_chunks",
    "kernel_postorder",
    "kernel_postorder_patch",
    "kernel_liu",
    "kernel_liu_state",
    "kernel_liu_patch",
    "kernel_min_mem",
    "kernel_replay_traversal",
    "kernel_replay_schedule",
    "kernel_out_of_core",
]


def flatten_chunks(nested) -> List[int]:
    """Flatten nested tuple chunks of node indices (explicit stack).

    The Explore/MinMem and Liu kernels accumulate traversals as nested
    tuples whose nesting depth can reach the tree depth; this flattener is
    iterative so deep chains cannot overflow the interpreter stack.
    """
    out: List[int] = []
    stack: List = [nested]
    while stack:
        item = stack.pop()
        if type(item) is tuple:
            stack.extend(reversed(item))
        else:
            out.append(item)
    return out

NodeId = Hashable

#: absolute tolerance for memory comparisons (mirrors repro.core.explore)
_EPS = 1e-9


class TreeKernel:
    """Flat, array-backed snapshot of a task tree.

    Instances are immutable by convention: they are built in one pass from a
    :class:`~repro.core.tree.Tree` (or directly from a parent array) and
    shared by every solver run on the same tree.

    Attributes
    ----------
    size : int
        Number of nodes ``p``.
    ids : list
        ``ids[i]`` is the original node identifier of index ``i``.  Indices
        are assigned in a top-down topological order: ``ids[0]`` is the root
        and every parent index is smaller than its children's indices.
    index : dict
        Inverse mapping ``original id -> index``.
    parent : list of int
        ``parent[i]`` is the parent index of node ``i`` (``-1`` for the root).
    child_ptr, child_idx : list of int
        Children in CSR form: the children of node ``i`` are
        ``child_idx[child_ptr[i]:child_ptr[i + 1]]``, in insertion order
        (the same order :meth:`Tree.children` reports).
    f, n : list of float
        Communication-file and execution-file sizes by index.
    mem_req : list of float
        ``MemReq(i) = f[i] + n[i] + sum(f[j] for j children of i)``
        (Equation (1) of the paper), precomputed.
    child_f_sum : list of float
        ``sum(f[j] for j children of i)``, precomputed.
    """

    __slots__ = (
        "size",
        "ids",
        "index",
        "parent",
        "child_ptr",
        "child_idx",
        "f",
        "n",
        "mem_req",
        "child_f_sum",
        # incremental-patch provenance: kernels built by :meth:`patched` keep
        # a weak reference to the kernel they were derived from (`_base`) and
        # the sorted tuple of indices whose subtree changed (`_dirty`); both
        # are ``None`` for kernels built from scratch.  The incremental
        # solvers (kernel_postorder_patch / kernel_liu_patch) use them to
        # recompute only the root-path-affected nodes
        "_base",
        "_dirty",
        # weak-referenceable so the engine arena (repro.solvers.engine) can
        # key its shared-memory exports by kernel and release the segment
        # when the kernel is garbage collected
        "__weakref__",
    )

    def __init__(
        self,
        parent: Sequence[int],
        f: Sequence[float],
        n: Sequence[float],
        *,
        ids: Optional[Sequence[NodeId]] = None,
    ) -> None:
        """Build a kernel from a topologically-ordered parent array.

        Parameters
        ----------
        parent : sequence of int
            ``parent[i]`` must be ``< i`` for every non-root node and ``-1``
            exactly for node ``0`` (top-down topological labeling).
        f, n : sequence of float
            Per-node weights, same length as ``parent``.
        ids : sequence, optional
            Original node identifiers (defaults to ``0 .. p-1``).

        Raises
        ------
        ValueError
            If the parent array is not topologically ordered or the lengths
            disagree.
        """
        p = len(parent)
        if len(f) != p or len(n) != p:
            raise ValueError("parent, f and n must have the same length")
        if p == 0:
            raise ValueError("cannot build a kernel for an empty tree")
        if parent[0] != -1:
            raise ValueError("node 0 must be the root (parent[0] == -1)")
        self.size = p
        self.parent = [int(x) for x in parent]
        self.f = [float(x) for x in f]
        self.n = [float(x) for x in n]
        if ids is None:
            self.ids = list(range(p))
            self.index = {i: i for i in range(p)}
        else:
            if len(ids) != p:
                raise ValueError("ids must have the same length as parent")
            self.ids = list(ids)
            self.index = {v: i for i, v in enumerate(self.ids)}
            if len(self.index) != p:
                raise ValueError("ids contains duplicates")

        counts = [0] * p
        for i in range(1, p):
            par = self.parent[i]
            if not 0 <= par < i:
                raise ValueError(
                    f"parent[{i}] = {par} breaks the topological labeling"
                )
            counts[par] += 1
        ptr = [0] * (p + 1)
        for i in range(p):
            ptr[i + 1] = ptr[i] + counts[i]
        self.child_ptr = ptr
        fill = list(ptr)
        child_idx = [0] * (p - 1)
        for i in range(1, p):
            par = self.parent[i]
            child_idx[fill[par]] = i
            fill[par] += 1
        self.child_idx = child_idx

        fvals = self.f
        cfs = [0.0] * p
        for i in range(1, p):
            cfs[self.parent[i]] += fvals[i]
        self.child_f_sum = cfs
        nvals = self.n
        self.mem_req = [fvals[i] + nvals[i] + cfs[i] for i in range(p)]
        self._base = None
        self._dirty = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_tree(cls, tree) -> "TreeKernel":
        """Build a kernel from a :class:`~repro.core.tree.Tree`.

        One BFS pass relabels the nodes top-down; children keep their
        insertion order, so every tie-breaking rule of the solvers behaves
        exactly as on the original tree.  Prefer :meth:`Tree.kernel`, which
        caches the result on the tree.
        """
        order = tree.topological_order()
        index = {v: i for i, v in enumerate(order)}
        # accessing the internal maps directly: this is the package-private
        # bulk path, one dict lookup per node instead of three method calls
        parent_map = tree._parent
        f_map = tree._f
        n_map = tree._n
        parent = [-1] * len(order)
        for i, v in enumerate(order):
            par = parent_map[v]
            if par is not None:
                parent[i] = index[par]
        return cls(
            parent,
            [f_map[v] for v in order],
            [n_map[v] for v in order],
            ids=order,
        )

    def to_tree(self):
        """Materialise a :class:`~repro.core.tree.Tree` (original ids)."""
        from .tree import Tree

        return Tree.from_parents(self.parent, self.f, self.n, ids=self.ids)

    # ------------------------------------------------------------------
    # flat-buffer export / attach (the engine arena's transport format)
    # ------------------------------------------------------------------
    def has_trivial_ids(self) -> bool:
        """True when the original identifiers are exactly ``0 .. p-1``.

        Kernels built by the bulk generators and the sparse pipeline carry
        trivial ids; exporters can then skip shipping the id list entirely.
        """
        ids = self.ids
        return ids[0] == 0 and ids[-1] == self.size - 1 and ids == list(range(self.size))

    def to_flat_arrays(self):
        """Export the defining arrays as three contiguous numpy arrays.

        Returns
        -------
        (parent, f, n) : numpy arrays
            ``int64`` parent indices and ``float64`` weights.  Together with
            :attr:`ids` these reproduce the kernel exactly via
            :meth:`from_flat_arrays`; the derived arrays (children CSR,
            ``mem_req``, ``child_f_sum``) are recomputed on attach, so the
            export is three buffers instead of ten.
        """
        import numpy as np

        return (
            np.asarray(self.parent, dtype=np.int64),
            np.asarray(self.f, dtype=np.float64),
            np.asarray(self.n, dtype=np.float64),
        )

    @classmethod
    def from_flat_arrays(cls, parent, f, n, *, ids=None) -> "TreeKernel":
        """Rebuild a kernel from :meth:`to_flat_arrays` output.

        A vectorized counterpart of ``__init__``: the topological check, the
        children CSR and the derived weight arrays are all computed with
        numpy primitives instead of per-node Python loops, so attaching a
        shipped kernel in a worker process costs a handful of array passes.
        The result is bit-identical to the ``__init__`` path -- in particular
        ``child_f_sum`` accumulates in the same index order (``np.bincount``
        sums its input sequentially) and children keep insertion order
        (stable argsort).

        Raises
        ------
        ValueError
            Same contract as the constructor: mismatched lengths, an empty
            tree, a non-root first node, or a parent array that breaks the
            topological labeling.
        """
        import numpy as np

        parent = np.ascontiguousarray(parent, dtype=np.int64)
        f = np.ascontiguousarray(f, dtype=np.float64)
        n = np.ascontiguousarray(n, dtype=np.float64)
        p = int(parent.shape[0])
        if f.shape[0] != p or n.shape[0] != p:
            raise ValueError("parent, f and n must have the same length")
        if p == 0:
            raise ValueError("cannot build a kernel for an empty tree")
        if parent[0] != -1:
            raise ValueError("node 0 must be the root (parent[0] == -1)")
        tail = parent[1:]
        if p > 1:
            bad = (tail < 0) | (tail >= np.arange(1, p, dtype=np.int64))
            if bad.any():
                i = int(np.argmax(bad)) + 1
                raise ValueError(
                    f"parent[{i}] = {int(parent[i])} breaks the topological labeling"
                )

        kern = object.__new__(cls)
        kern.size = p
        kern.parent = parent.tolist()
        kern.f = f.tolist()
        kern.n = n.tolist()
        if ids is None:
            kern.ids = list(range(p))
            kern.index = {i: i for i in range(p)}
        else:
            if len(ids) != p:
                raise ValueError("ids must have the same length as parent")
            kern.ids = list(ids)
            kern.index = {v: i for i, v in enumerate(kern.ids)}
            if len(kern.index) != p:
                raise ValueError("ids contains duplicates")

        counts = np.bincount(tail, minlength=p)
        ptr = np.zeros(p + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        kern.child_ptr = ptr.tolist()
        # stable sort groups children by parent while preserving their
        # relative (insertion) order -- the same CSR __init__ builds
        kern.child_idx = (np.argsort(tail, kind="stable") + 1).tolist()
        cfs = np.bincount(tail, weights=f[1:], minlength=p)
        kern.child_f_sum = cfs.tolist()
        kern.mem_req = (f + n + cfs).tolist()
        kern._base = None
        kern._dirty = None
        return kern

    # ------------------------------------------------------------------
    # incremental patching
    # ------------------------------------------------------------------
    def patched(self, patches: Sequence[tuple]) -> "TreeKernel":
        """A new kernel with a journal of tree mutations applied.

        Each patch is one of the op tuples :class:`~repro.core.tree.Tree`
        records while a cached kernel is being invalidated:

        * ``("add", node, parent, f, n)`` -- a new leaf under ``parent``;
        * ``("f", node, value)`` / ``("n", node, value)`` -- a weight update.

        Existing nodes keep their indices; added nodes are appended in patch
        order (a valid topological labeling, since every parent already has a
        smaller index).  The appended labeling can differ from the BFS
        labeling :meth:`from_tree` would produce, but all solver results are
        labeling-independent in id-space: the hot paths only rely on
        parent-before-child order and on the children's insertion order,
        both of which are preserved exactly.

        The result carries provenance for the incremental solvers:
        ``_base`` is a weak reference to ``self`` and ``_dirty`` is the
        sorted tuple of indices whose subtree differs from the base (the
        union of the mutated nodes' root paths).  Everything outside
        ``_dirty`` is untouched, so per-node solve state (postorder peaks,
        Liu segments) computed on the base kernel remains valid there.
        """
        ids = list(self.ids)
        index = dict(self.index)
        parent = list(self.parent)
        f = list(self.f)
        n = list(self.n)
        changed = set()
        for op in patches:
            kind = op[0]
            if kind == "add":
                _, node, par, fv, nv = op
                if node in index:
                    raise ValueError(f"patched node {node!r} already present")
                i = len(ids)
                ids.append(node)
                index[node] = i
                parent.append(index[par])
                f.append(float(fv))
                n.append(float(nv))
                changed.add(i)
                changed.add(index[par])
            elif kind == "f":
                _, node, value = op
                i = index[node]
                f[i] = float(value)
                changed.add(i)
                if parent[i] >= 0:
                    changed.add(parent[i])
            elif kind == "n":
                _, node, value = op
                i = index[node]
                n[i] = float(value)
                changed.add(i)
            else:
                raise ValueError(f"unknown kernel patch op {kind!r}")
        kern = TreeKernel(parent, f, n, ids=ids)
        dirty = set()
        for i in changed:
            while i >= 0 and i not in dirty:
                dirty.add(i)
                i = parent[i]
        kern._base = weakref.ref(self)
        kern._dirty = tuple(sorted(dirty))
        return kern

    def base_kernel(self) -> Optional["TreeKernel"]:
        """The kernel this one was patched from, if it is still alive."""
        ref = self._base
        return None if ref is None else ref()

    # ------------------------------------------------------------------
    # pickling (slots class; provenance weakrefs are dropped)
    # ------------------------------------------------------------------
    def __getstate__(self):
        return {
            slot: getattr(self, slot)
            for slot in TreeKernel.__slots__
            if slot not in ("__weakref__", "_base", "_dirty")
        }

    def __setstate__(self, state) -> None:
        for key, value in state.items():
            setattr(self, key, value)
        self._base = None
        self._dirty = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.size

    def children(self, i: int) -> List[int]:
        """Child indices of node ``i`` in insertion order."""
        return self.child_idx[self.child_ptr[i] : self.child_ptr[i + 1]]

    def max_mem_req(self) -> float:
        """``max_i MemReq(i)``, the trivial lower bound on main memory."""
        return max(self.mem_req)

    def total_file_size(self) -> float:
        """Sum of all communication-file sizes (I/O volume upper bound)."""
        return math.fsum(self.f)

    def validate_weights(self) -> None:
        """Check the weight invariants (mirrors :meth:`Tree.validate`).

        Raises ``ValueError`` on non-finite weights, negative file sizes or
        negative memory requirements.  The structural invariants (single
        root, acyclicity, connectivity) hold by construction.
        """
        for i in range(self.size):
            fv, nv, mr = self.f[i], self.n[i], self.mem_req[i]
            if fv != fv or abs(fv) == math.inf:
                raise ValueError(f"non-finite f for node {self.ids[i]!r}")
            if fv < 0:
                raise ValueError(f"negative file size for node {self.ids[i]!r}")
            if nv != nv or abs(nv) == math.inf:
                raise ValueError(f"non-finite n for node {self.ids[i]!r}")
            if mr < 0:
                raise ValueError(
                    f"negative memory requirement for node {self.ids[i]!r}"
                )

    def order_to_ids(self, order: Sequence[int]) -> Tuple[NodeId, ...]:
        """Map a sequence of node indices back to original identifiers."""
        ids = self.ids
        return tuple(ids[i] for i in order)

    def order_to_indices(self, order: Sequence[NodeId]) -> List[int]:
        """Map original identifiers to node indices (raises ``KeyError``)."""
        index = self.index
        return [index[v] for v in order]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"TreeKernel(p={self.size}, root={self.ids[0]!r})"


# ----------------------------------------------------------------------
# PostOrder: one bottom-up sweep over the index range
# ----------------------------------------------------------------------
def kernel_postorder(
    kern: TreeKernel, rule: str = "liu"
) -> Tuple[float, List[int], List[float], List[List[int]]]:
    """Memory-optimal (or ablation-rule) postorder on the kernel.

    Parameters
    ----------
    kern : TreeKernel
        The flat tree.
    rule : str
        ``"liu"`` (children by decreasing ``P_j - f_j``, optimal),
        ``"subtree_memory"`` (increasing subtree peak) or ``"natural"``
        (insertion order).

    Returns
    -------
    (memory, order, subtree_peak, child_order)
        Peak memory, the bottom-up node order (indices), the per-node
        subtree peaks, and the chosen child permutation per node.
    """
    p = kern.size
    f = kern.f
    n = kern.n
    child_ptr = kern.child_ptr
    child_idx = kern.child_idx
    peak = [0.0] * p
    child_order: List[List[int]] = [[]] * p

    for v in range(p - 1, -1, -1):
        lo, hi = child_ptr[v], child_ptr[v + 1]
        if lo == hi:
            peak[v] = f[v] + n[v]
            continue
        children = child_idx[lo:hi]
        if hi - lo > 1:  # singleton child lists need no ordering rule
            if rule == "liu":
                children.sort(key=lambda c: peak[c] - f[c], reverse=True)
            elif rule == "subtree_memory":
                children.sort(key=lambda c: peak[c])
        child_order[v] = children
        completed = 0.0
        best = 0.0
        for c in children:
            cand = completed + peak[c]
            if cand > best:
                best = cand
            completed += f[c]
        cand = completed + n[v] + f[v]
        peak[v] = cand if cand > best else best

    return peak[0], _emit_postorder(child_order), peak, child_order


def _emit_postorder(child_order: List[List[int]]) -> List[int]:
    """Bottom-up DFS following ``child_order`` (explicit stack)."""
    order: List[int] = []
    append = order.append
    stack: List[int] = [0]
    # encode "expanded" by pushing ~v (bitwise complement is a distinct int)
    while stack:
        v = stack.pop()
        if v < 0:
            append(~v)
            continue
        stack.append(~v)
        for c in reversed(child_order[v]):
            stack.append(c)
    return order


def kernel_postorder_patch(
    kern: TreeKernel,
    base_peak: Sequence[float],
    base_child_order: Sequence[List[int]],
    rule: str = "liu",
) -> Tuple[float, List[int], List[float], List[List[int]]]:
    """Incremental :func:`kernel_postorder` on a :meth:`TreeKernel.patched` kernel.

    ``base_peak`` / ``base_child_order`` are the per-node arrays a previous
    :func:`kernel_postorder` run (same ``rule``) produced on the kernel's
    base.  Only the nodes in ``kern._dirty`` -- the mutated nodes and their
    root paths -- are recomputed with the exact per-node update rule of the
    full sweep; every other node's subtree is untouched, so its cached peak
    and child permutation are reused verbatim.  The returned tuple is
    bit-identical to running :func:`kernel_postorder` from scratch (the
    differential suite in ``tests/differential`` asserts this).

    The inputs are never mutated: the returned arrays are fresh lists that
    share the unchanged per-node entries, so one base state can serve many
    patches.
    """
    if kern._dirty is None:
        raise ValueError("kernel has no patch provenance; run the full solve")
    p = kern.size
    f = kern.f
    n = kern.n
    child_ptr = kern.child_ptr
    child_idx = kern.child_idx
    peak = list(base_peak)
    peak.extend([0.0] * (p - len(peak)))
    child_order: List[List[int]] = list(base_child_order)
    child_order.extend([[]] * (p - len(child_order)))

    # dirty indices in decreasing order: every dirty child precedes its
    # dirty ancestors (parent[i] < i), exactly like the full bottom-up sweep
    for v in sorted(kern._dirty, reverse=True):
        lo, hi = child_ptr[v], child_ptr[v + 1]
        if lo == hi:
            peak[v] = f[v] + n[v]
            child_order[v] = []
            continue
        children = child_idx[lo:hi]
        if hi - lo > 1:
            if rule == "liu":
                children.sort(key=lambda c: peak[c] - f[c], reverse=True)
            elif rule == "subtree_memory":
                children.sort(key=lambda c: peak[c])
        child_order[v] = children
        completed = 0.0
        best = 0.0
        for c in children:
            cand = completed + peak[c]
            if cand > best:
                best = cand
            completed += f[c]
        cand = completed + n[v] + f[v]
        peak[v] = cand if cand > best else best

    return peak[0], _emit_postorder(child_order), peak, child_order


# ----------------------------------------------------------------------
# Liu's exact algorithm: hill--valley segment merge on float tuples
# ----------------------------------------------------------------------
def kernel_liu(
    kern: TreeKernel,
) -> Tuple[float, List[int], List[float], List[Tuple[float, float, tuple]]]:
    """Liu's exact MinMemory algorithm on the kernel.

    A faithful port of :func:`repro.core.liu.liu_optimal_traversal`: per
    subtree the canonical hill--valley representation is kept as plain
    ``(hill, valley, nodes)`` tuples, children segments are interleaved in
    decreasing ``hill - valley`` order (stable on ties), and the profile is
    re-cut by one backward plus one forward sweep.

    Returns
    -------
    (memory, order, subtree_peak, root_segments)
        The optimal memory, an optimal bottom-up order (indices), the
        optimal peak of every subtree, and the root's canonical segments as
        ``(hill, valley, nested_chunks)`` tuples (chunks hold node indices;
        flatten with :func:`repro.core.liu.flatten_nodes`).
    """
    p = kern.size
    f = kern.f
    n = kern.n
    child_ptr = kern.child_ptr
    child_idx = kern.child_idx
    segments_of: List[Optional[List[Tuple[float, float, tuple]]]] = [None] * p
    subtree_peak = [0.0] * p

    for v in range(p - 1, -1, -1):
        lo, hi = child_ptr[v], child_ptr[v + 1]
        fv = f[v]
        if lo == hi:
            # leaf: a single segment, no merge and no re-cut needed
            peak0 = fv + n[v]
            segments_of[v] = [(peak0, fv, (v,))]
            subtree_peak[v] = peak0
            continue
        if hi - lo == 1:
            # one child: the merge sort is a no-op (a canonical representation
            # already has non-increasing hill - valley), and converting to
            # relative increments and re-basing reproduces the absolute
            # levels, so the child's segments ARE the events
            child = child_idx[lo]
            events = segments_of[child]
            segments_of[child] = None  # merged; free the memory
            base = events[-1][1]
        else:
            keyed: List[Tuple[float, int, int, float, float, tuple]] = []
            for child_pos in range(lo, hi):
                child = child_idx[child_pos]
                prev_valley = 0.0
                segs = segments_of[child]
                for seg_idx, (hill, valley, nodes) in enumerate(segs):
                    keyed.append(
                        (
                            valley - hill,  # == -(hill - valley)
                            child_pos,
                            seg_idx,
                            hill - prev_valley,
                            valley - prev_valley,
                            nodes,
                        )
                    )
                    prev_valley = valley
                segments_of[child] = None  # merged; free the memory
            keyed.sort(key=lambda item: (item[0], item[1], item[2]))
            events = []
            base = 0.0
            for _, _, _, rel_hill, rel_valley, nodes in keyed:
                events.append((base + rel_hill, base + rel_valley, nodes))
                base += rel_valley
        own_peak = base + n[v] + fv
        events.append((own_peak, fv, (v,)))
        # The profile collapses into a single segment whenever the final
        # residual fv is the minimum over all events (the suffix-minimum cut
        # lands on the last event); that covers chains and most assembly
        # nodes, and skips the O(events) array bookkeeping of _canonical.
        max_hill = own_peak
        single = True
        for hill, valley, _ in events:
            if valley < fv:
                single = False
                break
            if hill > max_hill:
                max_hill = hill
        if single:
            segs = [(max_hill, fv, tuple(nodes for _, _, nodes in events))]
        else:
            segs = _canonical(events)
        segments_of[v] = segs
        subtree_peak[v] = segs[0][0]  # canonical hills are non-increasing

    root_segments = segments_of[0]
    assert root_segments is not None
    order: List[int] = []
    for _, _, nodes in root_segments:
        order.extend(flatten_chunks(nodes))
    return subtree_peak[0], order, subtree_peak, root_segments


def _canonical(
    events: List[Tuple[float, float, tuple]],
) -> List[Tuple[float, float, tuple]]:
    """Cut an event profile into its canonical hill--valley representation.

    Same construction as :func:`repro.core.liu._canonical_segments` (one
    backward sweep for suffix maxima/minima, one forward sweep for the
    cuts), producing plain tuples instead of ``Segment`` objects.
    """
    n_events = len(events)
    first_max = [0] * n_events
    last_min = [0] * n_events
    suffix_max = [0.0] * n_events
    suffix_min = [0.0] * n_events
    peak, level = events[-1][0], events[-1][1]
    suffix_max[-1] = peak
    suffix_min[-1] = level
    first_max[-1] = last_min[-1] = n_events - 1
    for t in range(n_events - 2, -1, -1):
        peak, level = events[t][0], events[t][1]
        if peak >= suffix_max[t + 1]:
            suffix_max[t] = peak
            first_max[t] = t
        else:
            suffix_max[t] = suffix_max[t + 1]
            first_max[t] = first_max[t + 1]
        if level < suffix_min[t + 1]:
            suffix_min[t] = level
            last_min[t] = t
        else:
            suffix_min[t] = suffix_min[t + 1]
            last_min[t] = last_min[t + 1]

    segments: List[Tuple[float, float, tuple]] = []
    start = 0
    while start < n_events:
        valley_pos = last_min[first_max[start]]
        segments.append(
            (
                suffix_max[start],
                events[valley_pos][1],
                tuple(events[t][2] for t in range(start, valley_pos + 1)),
            )
        )
        start = valley_pos + 1
    return segments


def _liu_visit(
    v: int,
    f: List[float],
    n: List[float],
    child_ptr: List[int],
    child_idx: List[int],
    segments_of: List[Optional[List[Tuple[float, float, tuple]]]],
) -> None:
    """One node of the Liu sweep, *retaining* every child's segment list.

    Same per-node computation as the corresponding block of
    :func:`kernel_liu`, except that children's segments are read (and, for
    the single-child case, copied) instead of being consumed -- the
    state-keeping and incremental variants below need them to stay valid.
    """
    lo, hi = child_ptr[v], child_ptr[v + 1]
    fv = f[v]
    if lo == hi:
        peak0 = fv + n[v]
        segments_of[v] = [(peak0, fv, (v,))]
        return
    if hi - lo == 1:
        # copy: kernel_liu appends the own-peak event onto the child's list
        # in place (the child is about to be freed there); here the child's
        # segments must survive for future patches
        events = list(segments_of[child_idx[lo]])
        base = events[-1][1]
    else:
        keyed: List[Tuple[float, int, int, float, float, tuple]] = []
        for child_pos in range(lo, hi):
            child = child_idx[child_pos]
            prev_valley = 0.0
            for seg_idx, (hill, valley, nodes) in enumerate(segments_of[child]):
                keyed.append(
                    (
                        valley - hill,
                        child_pos,
                        seg_idx,
                        hill - prev_valley,
                        valley - prev_valley,
                        nodes,
                    )
                )
                prev_valley = valley
        keyed.sort(key=lambda item: (item[0], item[1], item[2]))
        events = []
        base = 0.0
        for _, _, _, rel_hill, rel_valley, nodes in keyed:
            events.append((base + rel_hill, base + rel_valley, nodes))
            base += rel_valley
    own_peak = base + n[v] + fv
    events.append((own_peak, fv, (v,)))
    max_hill = own_peak
    single = True
    for hill, valley, _ in events:
        if valley < fv:
            single = False
            break
        if hill > max_hill:
            max_hill = hill
    if single:
        segs = [(max_hill, fv, tuple(nodes for _, _, nodes in events))]
    else:
        segs = _canonical(events)
    segments_of[v] = segs


def _liu_order(
    root_segments: List[Tuple[float, float, tuple]],
) -> List[int]:
    order: List[int] = []
    for _, _, nodes in root_segments:
        order.extend(flatten_chunks(nodes))
    return order


def kernel_liu_state(
    kern: TreeKernel,
) -> Tuple[float, List[int], List[float], List[List[Tuple[float, float, tuple]]]]:
    """:func:`kernel_liu`, returning the full per-node segment state.

    Identical result values (the segment merge is the same computation; the
    only difference is that no child segment list is freed), but the fourth
    element is ``segments_of`` -- every node's canonical hill--valley
    segments -- instead of just the root's.  That array, together with
    ``subtree_peak``, is the state :func:`kernel_liu_patch` resumes from.
    """
    p = kern.size
    f = kern.f
    n = kern.n
    child_ptr = kern.child_ptr
    child_idx = kern.child_idx
    segments_of: List[Optional[List[Tuple[float, float, tuple]]]] = [None] * p
    subtree_peak = [0.0] * p
    for v in range(p - 1, -1, -1):
        _liu_visit(v, f, n, child_ptr, child_idx, segments_of)
        subtree_peak[v] = segments_of[v][0][0]
    return subtree_peak[0], _liu_order(segments_of[0]), subtree_peak, segments_of


def kernel_liu_patch(
    kern: TreeKernel,
    base_subtree_peak: Sequence[float],
    base_segments_of: Sequence[Optional[List[Tuple[float, float, tuple]]]],
) -> Tuple[float, List[int], List[float], List[List[Tuple[float, float, tuple]]]]:
    """Incremental :func:`kernel_liu` on a :meth:`TreeKernel.patched` kernel.

    ``base_subtree_peak`` / ``base_segments_of`` come from a previous
    :func:`kernel_liu_state` (or ``kernel_liu_patch``) run on the kernel's
    base.  Only the nodes in ``kern._dirty`` are re-merged and re-cut; a
    clean node's subtree is untouched, so its canonical segments are exactly
    what the full sweep would recompute (segments only reference node
    indices inside the subtree, and existing nodes keep their indices under
    patching).  The result is bit-identical to a from-scratch
    :func:`kernel_liu_state`.
    """
    if kern._dirty is None:
        raise ValueError("kernel has no patch provenance; run the full solve")
    p = kern.size
    f = kern.f
    n = kern.n
    child_ptr = kern.child_ptr
    child_idx = kern.child_idx
    segments_of: List[Optional[List[Tuple[float, float, tuple]]]] = list(
        base_segments_of
    )
    segments_of.extend([None] * (p - len(segments_of)))
    subtree_peak = list(base_subtree_peak)
    subtree_peak.extend([0.0] * (p - len(subtree_peak)))
    for v in sorted(kern._dirty, reverse=True):
        _liu_visit(v, f, n, child_ptr, child_idx, segments_of)
        subtree_peak[v] = segments_of[v][0][0]
    return subtree_peak[0], _liu_order(segments_of[0]), subtree_peak, segments_of


# ----------------------------------------------------------------------
# Explore / MinMem: the paper's Algorithms 3 and 4 on index arrays
# ----------------------------------------------------------------------
class KernelExploreSolver:
    """Array-based counterpart of :class:`repro.core.explore.ExploreSolver`.

    Semantics are identical (including the per-node resume states and the
    ``reuse_states=False`` literal-pseudocode mode); the differences are
    mechanical: nodes are indices, per-node state lives in flat lists, and
    the resident size of the current cut is maintained incrementally instead
    of being re-summed per candidate.

    Parameters
    ----------
    kern : TreeKernel
        The flat tree (weights are validated once here, mirroring the
        ``tree.validate()`` call of the reference solver).
    reuse_states : bool
        Keep every node's reached exploration state across sweeps (the fast
        mode); ``False`` retains only the entry node's state, exactly as in
        the paper's pseudocode.
    """

    def __init__(self, kern: TreeKernel, *, reuse_states: bool = True) -> None:
        kern.validate_weights()
        self.kern = kern
        self.reuse_states = reuse_states
        self._peak_of = list(kern.mem_req)
        p = kern.size
        self._state_cut: List[Optional[List[int]]] = [None] * p
        self._state_chunks: List[Optional[list]] = [None] * p
        self._state_required = [0.0] * p
        self.explore_calls = 0
        self.nodes_visited = 0

    def peak_of(self, i: int) -> float:
        """Current estimate of the memory needed to progress below ``i``."""
        return self._peak_of[i]

    def explore(self, node: int, m_avail: float):
        """Run ``Explore`` from index ``node`` with ``m_avail`` memory.

        Returns
        -------
        (resident, cut, chunks, peak, required)
            ``M_i``, the frontier (list of indices), the nested traversal
            chunks, ``M_peak_i``, and the peak memory actually used by the
            returned partial traversal.
        """
        if not self.reuse_states:
            kept = self._state_cut[node]
            kept_chunks = self._state_chunks[node]
            kept_required = self._state_required[node]
            p = self.kern.size
            self._state_cut = [None] * p
            self._state_chunks = [None] * p
            self._state_required = [0.0] * p
            self._state_cut[node] = kept
            self._state_chunks[node] = kept_chunks
            self._state_required[node] = kept_required
            self._peak_of = list(self.kern.mem_req)
        stack = [self._explore_gen(node, m_avail)]
        result = None
        while stack:
            gen = stack[-1]
            try:
                request = gen.send(result)
            except StopIteration as stop:
                result = stop.value
                stack.pop()
                continue
            child, child_avail = request
            stack.append(self._explore_gen(child, child_avail))
            result = None
        assert result is not None
        return result

    def _explore_gen(self, node: int, m_avail: float):
        # Algorithm 3 as a generator yielding (child, avail) requests; the
        # driving trampoline in explore() keeps the stack explicit, so deep
        # chains never touch the interpreter recursion limit.
        kern = self.kern
        f = kern.f
        peak_of = self._peak_of
        self.explore_calls += 1
        mem_req = kern.mem_req[node]

        state_cut = self._state_cut[node]
        required = self._state_required[node]
        resumable = state_cut is not None and required <= m_avail + _EPS

        if resumable:
            cut = list(state_cut)
            chunks = list(self._state_chunks[node])
        else:
            if mem_req > m_avail + _EPS:
                # the node itself cannot be executed (paper lines 3-5)
                return (math.inf, (), (), mem_req, 0.0)
            # execute the node itself (paper lines 10-11)
            cut = kern.children(node)
            chunks = [node]
            required = mem_req
            self.nodes_visited += 1

        total = 0.0
        for j in cut:
            total += f[j]
        while cut:
            headroom = m_avail - total
            candidates = [j for j in cut if headroom + f[j] >= peak_of[j] - _EPS]
            if not candidates:
                break
            for j in candidates:
                rest = total - f[j]
                sub = yield (j, m_avail - rest)
                sub_resident, sub_cut, sub_chunks, sub_peak, sub_required = sub
                peak_of[j] = sub_peak
                if sub_resident <= f[j] + _EPS:
                    # merge the child's cut in place of the child (16-18)
                    idx = cut.index(j)
                    cut[idx : idx + 1] = sub_cut
                    chunks.append(sub_chunks)
                    total += sub_resident - f[j]
                    req = rest + sub_required
                    if req > required:
                        required = req
            # `total` tracks the resident size of the (possibly spliced) cut;
            # recompute the headroom on the next pass over the new frontier

        resident = total
        if cut:
            peak = math.inf
            for j in cut:
                cand = peak_of[j] + (resident - f[j])
                if cand < peak:
                    peak = cand
        else:
            peak = math.inf
        self._state_cut[node] = list(cut)
        self._state_chunks[node] = list(chunks)
        self._state_required[node] = required
        return (resident, tuple(cut), tuple(chunks), peak, required)


def kernel_min_mem(
    kern: TreeKernel, *, reuse_states: bool = True
) -> Tuple[float, List[int], int, int]:
    """The ``MinMem`` algorithm (paper Algorithm 4) on the kernel.

    Returns
    -------
    (memory, order, iterations, explore_calls)
        The optimal memory, an optimal top-down order (indices), the number
        of root sweeps and the total number of ``Explore`` invocations.
    """
    solver = KernelExploreSolver(kern, reuse_states=reuse_states)
    m_peak = max(kern.mem_req)
    m_avail = 0.0
    iterations = 0
    chunks: tuple = ()
    while m_peak != math.inf:
        m_avail = m_peak
        _, _, chunks, m_peak, _ = solver.explore(0, m_avail)
        iterations += 1
        if m_peak is not math.inf and m_peak <= m_avail:
            raise RuntimeError(
                "MinMem made no progress (floating-point stall); "
                f"memory={m_avail}, reported peak={m_peak}"
            )
    return m_avail, flatten_chunks(chunks), iterations, solver.explore_calls


# ----------------------------------------------------------------------
# replay: independent peak-memory / IO recomputation on index arrays
# ----------------------------------------------------------------------
def kernel_replay_traversal(
    kern: TreeKernel,
    order: Sequence[int],
    *,
    topdown: bool,
    partial: bool = False,
) -> Tuple[float, int, bool]:
    """Re-execute a traversal (given as indices) and recompute its peak.

    Enforces the same constraints as :func:`repro.bench.replay
    .replay_traversal`: no duplicates, precedence respected, completeness
    unless ``partial`` (top-down only).

    Returns
    -------
    (peak_memory, steps, complete)

    Raises
    ------
    ValueError
        On any violated constraint (callers re-wrap into ``ReplayError``).
    """
    p = kern.size
    f = kern.f
    n = kern.n
    parent = kern.parent
    cfs = kern.child_f_sum
    executed = [-1] * p
    for step, i in enumerate(order):
        if executed[i] != -1:
            raise ValueError(f"step {step}: node {kern.ids[i]!r} executed twice")
        executed[i] = step
    complete = len(order) == p
    if not complete and (not partial or not topdown):
        raise ValueError(
            f"order covers {len(order)} of {p} nodes; "
            "only top-down replays may be partial"
        )

    if topdown:
        if order and order[0] != 0:
            raise ValueError("top-down execution must start at the root")
        resident = f[0] if order else 0.0
        peak = resident
        for step, i in enumerate(order):
            par = parent[i]
            if par >= 0:
                par_step = executed[par]
                if par_step < 0 or par_step >= step:
                    raise ValueError(
                        f"step {step}: node {kern.ids[i]!r} executed "
                        "before its parent"
                    )
            during = resident + n[i] + cfs[i]
            if during > peak:
                peak = during
            resident += cfs[i] - f[i]
        return peak, len(order), complete

    # bottom-up: every child strictly before its parent, full permutation
    child_ptr = kern.child_ptr
    child_idx = kern.child_idx
    resident = 0.0
    peak = 0.0
    for step, i in enumerate(order):
        for pos in range(child_ptr[i], child_ptr[i + 1]):
            if executed[child_idx[pos]] >= step:
                raise ValueError(
                    f"step {step}: node {kern.ids[i]!r} executed before "
                    f"child {kern.ids[child_idx[pos]]!r}"
                )
        during = resident + n[i] + f[i]
        if during > peak:
            peak = during
        resident += f[i] - cfs[i]
    return peak, len(order), True


def kernel_replay_schedule(
    kern: TreeKernel,
    order: Sequence[int],
    evictions: Dict[int, int],
    *,
    memory: Optional[float] = None,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-9,
) -> Tuple[float, float, int]:
    """Re-execute an out-of-core schedule given as indices.

    ``order`` must be a full top-down permutation; ``evictions`` maps node
    index to the step before which its file is written out.  Enforces every
    constraint of the paper's Algorithm 2 (production before eviction,
    eviction strictly before execution, no double writes, optional memory
    bound) and recomputes peak resident memory and I/O volume.

    Returns
    -------
    (peak_memory, io_volume, evictions_count)

    Raises
    ------
    ValueError
        On any violated constraint (callers re-wrap into ``ReplayError``).
    """
    p = kern.size
    f = kern.f
    n = kern.n
    cfs = kern.child_f_sum
    child_ptr = kern.child_ptr
    child_idx = kern.child_idx
    if len(order) != p:
        raise ValueError("schedule order is not a permutation of the tree nodes")
    position = [-1] * p
    for step, i in enumerate(order):
        if position[i] != -1:
            raise ValueError("schedule order is not a permutation of the tree nodes")
        position[i] = step

    evict_at: Dict[int, List[int]] = {}
    for victim, step in evictions.items():
        if not 0 <= step < p:
            raise ValueError(
                f"eviction step {step} of {kern.ids[victim]!r} out of range"
            )
        if position[victim] <= step:
            raise ValueError(
                f"node {kern.ids[victim]!r} evicted at step {step} but "
                f"executes at step {position[victim]}; files must be "
                "evicted strictly before their owner runs"
            )
        evict_at.setdefault(step, []).append(victim)

    # resident state: 0 = absent, 1 = resident, 2 = on disk
    state = [0] * p
    state[0] = 1
    resident_size = f[0]
    peak = resident_size
    io_total = 0.0
    bound = None
    if memory is not None:
        bound = memory * (1.0 + rel_tol) + abs_tol

    for step, i in enumerate(order):
        victims = evict_at.get(step)
        if victims:
            for victim in victims:
                if state[victim] != 1:
                    raise ValueError(
                        f"step {step}: evicted file {kern.ids[victim]!r} is "
                        "not resident (not produced yet, or already written out)"
                    )
                state[victim] = 2
                resident_size -= f[victim]
                io_total += f[victim]
        if state[i] == 2:  # read the input file back from secondary memory
            state[i] = 1
            resident_size += f[i]
        if state[i] != 1:
            raise ValueError(
                f"step {step}: input file of {kern.ids[i]!r} is not "
                "resident; the parent has not executed"
            )
        step_peak = resident_size + n[i] + cfs[i]
        if bound is not None and step_peak > bound:
            raise ValueError(
                f"step {step}: executing {kern.ids[i]!r} needs "
                f"{step_peak:.6g} but the memory bound is {memory:.6g}"
            )
        if step_peak > peak:
            peak = step_peak
        state[i] = 0
        resident_size += cfs[i] - f[i]
        for pos in range(child_ptr[i], child_ptr[i + 1]):
            state[child_idx[pos]] = 1

    for i in range(p):
        if state[i] == 2:
            raise ValueError(
                f"files never read back: [{kern.ids[i]!r}]"
            )
    return peak, io_total, len(evictions)


# ----------------------------------------------------------------------
# MinIO: the eviction simulator with incremental resident accounting
# ----------------------------------------------------------------------
def kernel_out_of_core(
    kern: TreeKernel,
    memory: float,
    order: Sequence[int],
    selector,
    *,
    eps: float = 1e-12,
) -> Tuple[Dict[int, int], float, float]:
    """Out-of-core simulation of a top-down ``order`` (indices) on the kernel.

    Faithful port of :func:`repro.core.minio.scheduler.run_out_of_core`'s
    hot loop: whenever the next node does not fit, the evictable resident
    files (latest-scheduled-first) are offered to ``selector``; any
    shortfall is topped up in LSNF order.  The resident size is maintained
    incrementally -- the reference re-sums the resident dict per step, which
    is quadratic.

    Parameters
    ----------
    kern, memory, order:
        Instance, memory bound (``>= max MemReq``), full top-down order.
    selector:
        ``(candidates, io_req) -> victims`` over ``(original id, size)``
        pairs, exactly as the public heuristics expect.

    Returns
    -------
    (evictions, io_volume, peak_resident)
        Eviction step per evicted node *index*, total written volume, and
        the peak resident memory.
    """
    p = kern.size
    f = kern.f
    ids = kern.ids
    index = kern.index
    mem_req = kern.mem_req
    child_ptr = kern.child_ptr
    child_idx = kern.child_idx

    position = [0] * p
    for step, i in enumerate(order):
        position[i] = step

    resident: Dict[int, float] = {0: f[0]}
    resident_size = f[0]
    on_disk = set()
    evictions: Dict[int, int] = {}
    io_total = 0.0
    peak_resident = resident_size

    for step, i in enumerate(order):
        # 1. read the input file back if it was unloaded
        if i in on_disk:
            on_disk.discard(i)
            resident[i] = f[i]
            resident_size += f[i]

        # 2. free memory if the node does not fit
        extra = mem_req[i] - f[i]
        io_req = extra - (memory - resident_size)
        if io_req > eps:
            # evictable files, latest-scheduled-first (the paper's set S),
            # exposed to the selector under their original identifiers
            cand_idx = sorted(
                (j for j in resident if j != i),
                key=lambda j: position[j],
                reverse=True,
            )
            candidates = [(ids[j], resident[j]) for j in cand_idx]
            freed = 0.0
            for victim_id in selector(candidates, io_req):
                j = index[victim_id]
                size = resident.pop(j)
                resident_size -= size
                freed += size
                on_disk.add(j)
                evictions[j] = step
                io_total += f[j]
            if freed + eps < io_req:
                # top up in LSNF order so execution always proceeds
                for j in cand_idx:
                    if freed >= io_req - eps:
                        break
                    if j not in resident:
                        continue
                    size = resident.pop(j)
                    resident_size -= size
                    freed += size
                    on_disk.add(j)
                    evictions[j] = step
                    io_total += f[j]
            if freed + eps < io_req:
                raise ValueError(
                    "infeasible eviction: not enough resident files to free"
                )

        # 3. execute the node
        during = resident_size + extra
        if during > peak_resident:
            peak_resident = during
        size = resident.pop(i, None)
        if size is not None:
            resident_size -= size
        for pos in range(child_ptr[i], child_ptr[i + 1]):
            c = child_idx[pos]
            resident[c] = f[c]
            resident_size += f[c]

    return evictions, io_total, peak_resident
