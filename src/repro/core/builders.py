"""Helpers to construct :class:`~repro.core.tree.Tree` objects.

Besides plain constructors (from parent arrays, from edge lists, from
``networkx`` graphs), this module implements the two *model variant*
reductions of Section III-C of the paper:

* :func:`from_replacement_model` -- the pebble-game-style model where the
  memory used by the input file of a node is *replaced* by the memory of its
  output files, so that processing node ``i`` needs
  ``max(f_i, sum_j f_j)``.  Reduced to the paper's model by giving node ``i``
  a negative execution file ``n_i = -min(f_i, sum_j f_j)`` (Figure 1).
* :func:`from_liu_model` -- Liu's (1987) two-node-per-column model where each
  column ``x`` is represented by a pair ``(x+, x-)`` with in-processing cost
  ``n_{x+}`` and residual cost ``n_{x-}``.  Reduced by merging each pair into
  one node with ``f_i = n_{x-}`` and
  ``n_i = n_{x+} - n_{x-} - sum_{children j} n_{j-}`` (Figure 2).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence, Tuple

from .tree import Tree, TreeValidationError

__all__ = [
    "from_parent_list",
    "from_edges",
    "from_networkx",
    "from_replacement_model",
    "from_liu_model",
    "chain_tree",
    "star_tree",
    "uniform_weights",
]

NodeId = Hashable


def from_parent_list(
    parents: Sequence[Optional[int]],
    f: Optional[Sequence[float]] = None,
    n: Optional[Sequence[float]] = None,
) -> Tree:
    """Build a tree from a parent array.

    Parameters
    ----------
    parents:
        ``parents[i]`` is the parent of node ``i``; exactly one entry must be
        ``None`` (or ``-1``), marking the root.
    f, n:
        Optional per-node weights (default 0).

    Returns
    -------
    Tree
        A tree over the nodes ``0 .. len(parents) - 1``.
    """
    p = len(parents)
    fvals = [0.0] * p if f is None else [float(x) for x in f]
    nvals = [0.0] * p if n is None else [float(x) for x in n]
    if len(fvals) != p or len(nvals) != p:
        raise TreeValidationError("parents, f and n must have the same length")

    norm = [None if (x is None or x == -1) else int(x) for x in parents]
    roots = [i for i, x in enumerate(norm) if x is None]
    if len(roots) != 1:
        raise TreeValidationError(f"expected exactly one root, found {len(roots)}")

    tree = Tree()
    # Insert in an order where parents precede children.
    children: Dict[int, list] = {i: [] for i in range(p)}
    for i, par in enumerate(norm):
        if par is not None:
            if not (0 <= par < p):
                raise TreeValidationError(f"parent index {par} out of range")
            children[par].append(i)
    order = [roots[0]]
    idx = 0
    while idx < len(order):
        order.extend(children[order[idx]])
        idx += 1
    if len(order) != p:
        raise TreeValidationError("parent array contains a cycle")
    for node in order:
        tree.add_node(node, parent=norm[node], f=fvals[node], n=nvals[node])
    tree.validate()
    return tree


def from_edges(
    edges: Iterable[Tuple[NodeId, NodeId]],
    root: NodeId,
    f: Optional[Mapping[NodeId, float]] = None,
    n: Optional[Mapping[NodeId, float]] = None,
) -> Tree:
    """Build a tree from (parent, child) edges and an explicit root."""
    f = dict(f or {})
    n = dict(n or {})
    children: Dict[NodeId, list] = {}
    nodes = {root}
    for parent, child in edges:
        children.setdefault(parent, []).append(child)
        nodes.add(parent)
        nodes.add(child)
    tree = Tree()
    tree.add_node(root, f=f.get(root, 0.0), n=n.get(root, 0.0))
    queue = [root]
    while queue:
        parent = queue.pop()
        for child in children.get(parent, []):
            tree.add_node(child, parent=parent, f=f.get(child, 0.0), n=n.get(child, 0.0))
            queue.append(child)
    if tree.size != len(nodes):
        raise TreeValidationError("edge list does not describe a single rooted tree")
    tree.validate()
    return tree


def from_networkx(graph, root: NodeId) -> Tree:
    """Build a tree from a ``networkx`` DiGraph whose edges go parent -> child.

    Node attributes ``f`` and ``n`` are used as weights when present.
    """
    f = {v: data.get("f", 0.0) for v, data in graph.nodes(data=True)}
    n = {v: data.get("n", 0.0) for v, data in graph.nodes(data=True)}
    return from_edges(graph.edges(), root=root, f=f, n=n)


# ----------------------------------------------------------------------
# model-variant reductions (Section III-C)
# ----------------------------------------------------------------------
def from_replacement_model(tree: Tree) -> Tree:
    """Reduce an instance of the *model with replacement* to the paper model.

    In the replacement model the memory needed to process node ``i`` is
    ``max(f_i, sum_{j in children(i)} f_j)`` -- the input file is replaced in
    place by the output files.  The reduction (Figure 1) keeps the same
    structure and file sizes but assigns execution files

    ``n_i = -min(f_i, sum_{j in children(i)} f_j)``

    so that ``MemReq(i) = f_i + n_i + sum_j f_j`` equals the replacement-model
    requirement.

    Parameters
    ----------
    tree:
        Instance interpreted under the replacement model; its ``n`` weights
        are ignored (they are 0 in that model).

    Returns
    -------
    Tree
        A new tree interpreted under the paper model.
    """
    reduced = tree.copy()
    for node in reduced.topological_order():
        child_sum = sum(reduced.f(c) for c in reduced.children(node))
        reduced.set_n(node, -min(reduced.f(node), child_sum))
    reduced.validate()
    return reduced


def from_liu_model(
    parents: Sequence[Optional[int]],
    n_plus: Sequence[float],
    n_minus: Sequence[float],
) -> Tree:
    """Reduce an instance of Liu's (1987) model to the paper model.

    Liu's model represents each column ``x`` by two nodes ``x+`` (while the
    column is being processed, with storage ``n_{x+}``) and ``x-`` (after its
    processing, with storage ``n_{x-}``).  The reduction of Figure 2 merges
    each pair back into a single node ``x`` with

    ``f_x = n_{x-}``  and  ``n_x = n_{x+} - n_{x-} - sum_{children j} n_{j-}``.

    Parameters
    ----------
    parents:
        Parent array of the (merged) column tree.
    n_plus, n_minus:
        Per-column storage while processing / after processing.

    Returns
    -------
    Tree
        Equivalent instance of the paper model.
    """
    p = len(parents)
    if len(n_plus) != p or len(n_minus) != p:
        raise TreeValidationError("parents, n_plus and n_minus must have equal length")
    children: Dict[int, list] = {i: [] for i in range(p)}
    for i, par in enumerate(parents):
        if par is not None and par != -1:
            children[int(par)].append(i)
    f = [float(n_minus[i]) for i in range(p)]
    n = [
        float(n_plus[i]) - float(n_minus[i]) - sum(float(n_minus[j]) for j in children[i])
        for i in range(p)
    ]
    return from_parent_list(parents, f=f, n=n)


# ----------------------------------------------------------------------
# simple parametric shapes (more elaborate generators live in repro.generators)
# ----------------------------------------------------------------------
def chain_tree(length: int, f: float = 1.0, n: float = 0.0) -> Tree:
    """A chain of ``length`` nodes (node 0 is the root)."""
    if length < 1:
        raise TreeValidationError("length must be >= 1")
    parents: list = [-1] + list(range(length - 1))
    return Tree.from_parents(parents, [f] * length, [n] * length)


def star_tree(leaves: int, root_f: float = 0.0, leaf_f: float = 1.0, n: float = 0.0) -> Tree:
    """A root with ``leaves`` children."""
    if leaves < 0:
        raise TreeValidationError("leaves must be >= 0")
    parents: list = [-1] + [0] * leaves
    f = [root_f] + [leaf_f] * leaves
    return Tree.from_parents(parents, f, [n] * (leaves + 1))


def uniform_weights(tree: Tree, f: float = 1.0, n: float = 0.0) -> Tree:
    """Return a copy of ``tree`` with every node assigned the same weights."""
    out = tree.copy()
    for node in out.nodes():
        out.set_f(node, f)
        out.set_n(node, n)
    return out
