"""Serialization of task trees, traversals and solve reports.

Trees are stored as a small JSON document (schema version 1) listing the
nodes in top-down order with their parent, ``f`` and ``n`` weights, so that a
dataset of assembly trees can be materialised once and reused across
experiments.  Traversals are stored alongside as plain node lists with their
convention, and :class:`repro.solvers.SolveReport` objects round-trip through
:func:`solve_report_to_dict` / :func:`solve_report_from_dict` (backing the
CLI's ``solve --json`` output).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from .traversal import Traversal
from .tree import Tree, TreeValidationError

__all__ = [
    "tree_to_dict",
    "tree_from_dict",
    "save_tree",
    "load_tree",
    "traversal_to_dict",
    "traversal_from_dict",
    "solve_report_to_dict",
    "solve_report_from_dict",
]

SCHEMA_VERSION = 1


def tree_to_dict(tree: Tree) -> Dict[str, Any]:
    """Convert a tree to a JSON-serialisable dictionary."""
    nodes = []
    for node in tree.topological_order():
        nodes.append(
            {
                "id": node,
                "parent": tree.parent(node),
                "f": tree.f(node),
                "n": tree.n(node),
            }
        )
    return {"schema": SCHEMA_VERSION, "root": tree.root, "nodes": nodes}


def tree_from_dict(data: Dict[str, Any]) -> Tree:
    """Rebuild a tree from :func:`tree_to_dict` output."""
    if data.get("schema") != SCHEMA_VERSION:
        raise TreeValidationError(f"unsupported tree schema {data.get('schema')!r}")
    tree = Tree()
    for entry in data["nodes"]:
        tree.add_node(
            entry["id"], parent=entry["parent"], f=entry["f"], n=entry["n"]
        )
    tree.validate()
    return tree


def save_tree(tree: Tree, path: Union[str, Path]) -> None:
    """Write a tree to ``path`` as JSON."""
    Path(path).write_text(json.dumps(tree_to_dict(tree)), encoding="utf-8")


def load_tree(path: Union[str, Path]) -> Tree:
    """Read a tree previously written by :func:`save_tree`."""
    return tree_from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def traversal_to_dict(traversal: Traversal) -> Dict[str, Any]:
    """Convert a traversal to a JSON-serialisable dictionary."""
    return {
        "schema": SCHEMA_VERSION,
        "convention": traversal.convention,
        "order": list(traversal.order),
    }


def traversal_from_dict(data: Dict[str, Any]) -> Traversal:
    """Rebuild a traversal from :func:`traversal_to_dict` output."""
    if data.get("schema") != SCHEMA_VERSION:
        raise TreeValidationError(
            f"unsupported traversal schema {data.get('schema')!r}"
        )
    return Traversal(tuple(data["order"]), data["convention"])


def solve_report_to_dict(report) -> Dict[str, Any]:
    """Convert a :class:`repro.solvers.SolveReport` to a JSON-safe dict.

    Thin wrapper around :func:`repro.solvers.report.report_to_dict`; the
    import is deferred because :mod:`repro.solvers` itself builds on this
    module.
    """
    from ..solvers.report import report_to_dict

    return report_to_dict(report)


def solve_report_from_dict(data: Dict[str, Any]):
    """Rebuild a :class:`repro.solvers.SolveReport` from its dict form."""
    from ..solvers.report import report_from_dict

    return report_from_dict(data)
