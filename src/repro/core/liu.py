"""Liu's exact MinMemory algorithm via hill--valley segments (Liu, 1987).

This is the reference optimal algorithm the paper compares against.  It works
bottom-up on the in-tree reading of the task tree.  The optimal traversal of a
subtree is summarised by its *hill--valley representation*: the memory profile
of the traversal is cut at well-chosen local minima into segments
``(h_1, v_1), (h_2, v_2), ...`` where ``h_s`` is the peak reached during
segment ``s`` and ``v_s`` the memory resident when the segment ends, with
``h_1 >= h_2 >= ...`` and ``v_1 <= v_2 <= ...``.

To combine the children of a node, their segments are interleaved in
decreasing order of ``h_s - v_s`` (an exchange argument shows this is
optimal), each child's own segments staying in order -- which is automatic
because ``h - v`` is non-increasing inside a canonical representation.  After
all children segments, the node itself executes, requiring
``sum_j f_j + n_i + f_i`` and leaving ``f_i`` resident.  The resulting profile
is re-cut into a canonical representation and passed to the parent.

The peak of the root's first segment is the optimal memory; the concatenated
segment node lists give an optimal traversal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from .traversal import BOTTOMUP, Traversal
from .tree import Tree

__all__ = ["LiuResult", "Segment", "liu_optimal_traversal", "liu_min_memory"]

NodeId = Hashable


@dataclass(frozen=True)
class Segment:
    """One hill--valley segment of a subtree traversal.

    ``hill`` and ``valley`` are absolute memory levels within the subtree
    (the subtree's own profile starts at level 0).  ``nodes`` is a *nested*
    sequence of node chunks; use :func:`flatten_nodes` to obtain the flat
    execution order.
    """

    hill: float
    valley: float
    nodes: tuple


@dataclass(frozen=True)
class LiuResult:
    """Result of Liu's exact algorithm.

    Attributes
    ----------
    memory:
        The optimal (minimum) main memory over all traversals.
    traversal:
        An optimal traversal, in bottom-up convention.
    segments:
        Canonical hill--valley representation of the root subtree.
    subtree_peak:
        Optimal peak memory of every subtree (useful for diagnostics).
    """

    memory: float
    traversal: Traversal
    segments: Tuple[Segment, ...]
    subtree_peak: Dict[NodeId, float]


def _chunks_to_ids(nested: tuple, ids: Sequence[NodeId]) -> tuple:
    """Flatten a nested chunk tree of node indices into original ids.

    Iterative (via :func:`repro.core.kernel.flatten_chunks`): on deep chains
    the chunk nesting is as deep as the tree, so a recursive rewrite would
    defeat the kernel's purpose.  The flat tuple is a valid
    :class:`Segment.nodes` value -- consumers are documented to go through
    :func:`flatten_nodes` anyway.
    """
    from .kernel import flatten_chunks

    return tuple(ids[i] for i in flatten_chunks(nested))


def flatten_nodes(nested: Sequence) -> List[NodeId]:
    """Flatten the nested node chunks stored in :class:`Segment` objects."""
    out: List[NodeId] = []
    stack: List = [nested]
    # Depth-first flattening with an explicit stack; chunks are tuples/lists,
    # leaves are node identifiers.
    while stack:
        item = stack.pop()
        if isinstance(item, (tuple, list)):
            stack.extend(reversed(item))
        else:
            out.append(item)
    return out


def liu_min_memory(tree: Tree, *, engine: str = "kernel") -> float:
    """Minimum memory over all traversals (value only)."""
    return liu_optimal_traversal(tree, engine=engine).memory


def liu_optimal_traversal(tree: Tree, *, engine: str = "kernel") -> LiuResult:
    """Run Liu's exact algorithm and return the optimal traversal.

    Parameters
    ----------
    tree : Tree or TreeKernel
        The task tree (a flat :class:`~repro.core.kernel.TreeKernel` is
        accepted directly).
    engine : str
        ``"kernel"`` (default) runs the array-backed segment merge of
        :func:`repro.core.kernel.kernel_liu`; ``"reference"`` runs the
        original per-node implementation (kept as the test oracle).  Both
        produce identical results.

    Returns
    -------
    LiuResult
        Optimal memory, an optimal bottom-up traversal, the root's canonical
        hill--valley segments, and the optimal peak of every subtree.

    Notes
    -----
    The computation is iterative (bottom-up over the nodes) so arbitrarily
    deep trees are supported.  Worst-case complexity is ``O(p^2)`` (quadratic
    in the number of nodes), as in the paper.
    """
    if engine not in ("kernel", "reference"):
        raise ValueError(f"unknown engine {engine!r}; expected 'kernel' or 'reference'")
    if engine == "kernel":
        from .kernel import TreeKernel, kernel_liu

        kern = tree if isinstance(tree, TreeKernel) else tree.kernel()
        memory, order_idx, peaks, root_segments = kernel_liu(kern)
        ids = kern.ids
        segments = tuple(
            Segment(
                hill=hill,
                valley=valley,
                nodes=_chunks_to_ids(nodes, ids),
            )
            for hill, valley, nodes in root_segments
        )
        return LiuResult(
            memory=memory,
            traversal=Traversal(kern.order_to_ids(order_idx), BOTTOMUP),
            segments=segments,
            subtree_peak={ids[i]: peaks[i] for i in range(kern.size)},
        )

    if not isinstance(tree, Tree):
        tree = tree.to_tree()
    segments_of: Dict[NodeId, List[Segment]] = {}
    subtree_peak: Dict[NodeId, float] = {}

    for node in tree.bottom_up_order():
        children = tree.children(node)
        events: List[Tuple[float, float, tuple]] = []

        if children:
            # Convert every child's canonical (absolute) segments into
            # relative increments and merge them in decreasing (hill - valley)
            # order, preserving per-child order for equal keys.
            keyed: List[Tuple[float, int, int, float, float, tuple]] = []
            for child_idx, child in enumerate(children):
                prev_valley = 0.0
                for seg_idx, seg in enumerate(segments_of[child]):
                    rel_hill = seg.hill - prev_valley
                    rel_valley = seg.valley - prev_valley
                    keyed.append(
                        (
                            -(seg.hill - seg.valley),
                            child_idx,
                            seg_idx,
                            rel_hill,
                            rel_valley,
                            seg.nodes,
                        )
                    )
                    prev_valley = seg.valley
                # children segment lists are no longer needed once merged
                del segments_of[child]
            keyed.sort(key=lambda item: (item[0], item[1], item[2]))

            base = 0.0
            for _, _, _, rel_hill, rel_valley, nodes in keyed:
                events.append((base + rel_hill, base + rel_valley, nodes))
                base += rel_valley
        else:
            base = 0.0

        # The node itself: children files resident, allocate n_i + f_i,
        # release the children files, keep f_i.
        own_peak = base + tree.n(node) + tree.f(node)
        events.append((own_peak, tree.f(node), (node,)))

        segments_of[node] = _canonical_segments(events)
        subtree_peak[node] = max(seg.hill for seg in segments_of[node])

    root_segments = tuple(segments_of[tree.root])
    order: List[NodeId] = []
    for seg in root_segments:
        order.extend(flatten_nodes(seg.nodes))
    traversal = Traversal(tuple(order), BOTTOMUP)
    return LiuResult(
        memory=subtree_peak[tree.root],
        traversal=traversal,
        segments=root_segments,
        subtree_peak=subtree_peak,
    )


def _canonical_segments(events: List[Tuple[float, float, tuple]]) -> List[Segment]:
    """Cut an event profile into its canonical hill--valley representation.

    ``events`` is a list of ``(peak_during, level_after, nodes)`` triples in
    execution order.  Each segment starts where the previous one ended, peaks
    at the maximum remaining peak and is cut at the *last* position achieving
    the minimum residual level reached at or after that peak.  This yields
    non-increasing hills and non-decreasing valleys, and packs runs of events
    with identical residual levels into a single segment (interrupting such a
    run cannot help a parent, since the memory level at the intermediate cut
    points equals the level at the end of the run).

    The construction is a single backward sweep plus a single forward sweep,
    i.e. linear in the number of events.
    """
    n_events = len(events)
    if n_events == 0:
        return []
    # suffix maxima of the peaks (with first position achieving them) and
    # suffix minima of the residual levels (with last position achieving them)
    first_max = [0] * n_events
    last_min = [0] * n_events
    suffix_max = [0.0] * n_events
    suffix_min = [0.0] * n_events
    suffix_max[-1] = events[-1][0]
    suffix_min[-1] = events[-1][1]
    first_max[-1] = last_min[-1] = n_events - 1
    for t in range(n_events - 2, -1, -1):
        peak, level = events[t][0], events[t][1]
        if peak >= suffix_max[t + 1]:
            suffix_max[t] = peak
            first_max[t] = t
        else:
            suffix_max[t] = suffix_max[t + 1]
            first_max[t] = first_max[t + 1]
        if level < suffix_min[t + 1]:
            suffix_min[t] = level
            last_min[t] = t
        else:
            suffix_min[t] = suffix_min[t + 1]
            last_min[t] = last_min[t + 1]

    segments: List[Segment] = []
    start = 0
    while start < n_events:
        hill_pos = first_max[start]
        valley_pos = last_min[hill_pos]
        chunk = tuple(events[t][2] for t in range(start, valley_pos + 1))
        segments.append(
            Segment(hill=suffix_max[start], valley=events[valley_pos][1], nodes=chunk)
        )
        start = valley_pos + 1
    return segments
