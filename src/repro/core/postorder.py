"""The ``PostOrder`` algorithm: the best postorder traversal (Liu, 1986).

Sparse direct solvers such as MUMPS traverse the assembly tree in postorder:
once the first node of a subtree is executed, the whole subtree is finished
before any other node.  Liu characterised the memory-optimal postorder: the
children of every node must be processed in decreasing order of
``P_j - f_j``, where ``P_j`` is the peak memory of the (optimal postorder)
traversal of the subtree rooted at ``j`` and ``f_j`` the size of the file it
leaves in memory.  The proof is a standard exchange argument; the resulting
algorithm runs in ``O(p log p)`` time.

The module exposes :func:`best_postorder` (the optimal rule) and, for ablation
purposes, :func:`postorder_with_rule` which also supports the two naive rules
``"natural"`` (children in insertion order) and ``"subtree_memory"``
(children by increasing subtree peak, the folklore rule quoted in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from .traversal import BOTTOMUP, Traversal
from .tree import Tree

__all__ = ["PostOrderResult", "best_postorder", "postorder_with_rule", "POSTORDER_RULES"]

NodeId = Hashable

POSTORDER_RULES = ("liu", "subtree_memory", "natural")


@dataclass(frozen=True)
class PostOrderResult:
    """Result of a postorder MinMemory computation.

    Attributes
    ----------
    memory:
        Peak memory of the traversal (the minimum main memory making it
        feasible in-core).
    traversal:
        The postorder traversal itself, in bottom-up convention.
    subtree_peak:
        ``subtree_peak[v]`` is the peak memory of the postorder traversal of
        the subtree rooted at ``v`` (including the file ``f_v`` it leaves in
        memory at the end).
    child_order:
        The order in which the children of every node are processed.
    """

    memory: float
    traversal: Traversal
    subtree_peak: Dict[NodeId, float]
    child_order: Dict[NodeId, Tuple[NodeId, ...]]


def best_postorder(tree: Tree, *, engine: str = "kernel") -> PostOrderResult:
    """Compute the memory-optimal postorder traversal (Liu's rule).

    Returns a :class:`PostOrderResult`; ``result.memory`` solves the
    MinMemory-PostOrder problem of the paper.
    """
    return postorder_with_rule(tree, rule="liu", engine=engine)


def postorder_with_rule(
    tree: Tree, rule: str = "liu", *, engine: str = "kernel"
) -> PostOrderResult:
    """Compute a postorder traversal using a given child-ordering rule.

    Parameters
    ----------
    tree : Tree or TreeKernel
        The task tree (a flat :class:`~repro.core.kernel.TreeKernel` is
        accepted directly).
    rule : str
        ``"liu"`` -- children in decreasing ``P_j - f_j`` (optimal among
        postorders); ``"subtree_memory"`` -- children in increasing subtree
        peak; ``"natural"`` -- children in insertion order.
    engine : str
        ``"kernel"`` (default) runs the array-backed sweep of
        :func:`repro.core.kernel.kernel_postorder`; ``"reference"`` runs the
        original per-node implementation (kept as the test oracle).  Both
        produce identical results.

    Returns
    -------
    PostOrderResult
        Peak memory, the traversal (bottom-up), per-subtree peaks, and the
        chosen child order of every node.

    Notes
    -----
    In the bottom-up convention, while the ``k``-th child subtree of node
    ``i`` is being processed, the files of the already-completed siblings are
    resident.  The peak of the subtree rooted at ``i`` is therefore::

        P_i = max( max_k ( sum_{j scheduled before k} f_j + P_k ),
                   sum_j f_j + n_i + f_i )

    and Liu's rule minimises the first term over all child permutations.
    """
    if rule not in POSTORDER_RULES:
        raise ValueError(f"unknown postorder rule {rule!r}; expected one of {POSTORDER_RULES}")
    if engine not in ("kernel", "reference"):
        raise ValueError(f"unknown engine {engine!r}; expected 'kernel' or 'reference'")

    if engine == "kernel":
        from .kernel import TreeKernel, kernel_postorder

        kern = tree if isinstance(tree, TreeKernel) else tree.kernel()
        memory, order_idx, peaks, child_orders = kernel_postorder(kern, rule)
        ids = kern.ids
        return PostOrderResult(
            memory=memory,
            traversal=Traversal(kern.order_to_ids(order_idx), BOTTOMUP),
            subtree_peak={ids[i]: peaks[i] for i in range(kern.size)},
            child_order={
                ids[i]: tuple(ids[c] for c in child_orders[i])
                for i in range(kern.size)
            },
        )

    if not isinstance(tree, Tree):
        tree = tree.to_tree()
    peak: Dict[NodeId, float] = {}
    child_order: Dict[NodeId, Tuple[NodeId, ...]] = {}

    for node in tree.bottom_up_order():
        children = tree.children(node)
        if not children:
            peak[node] = tree.f(node) + tree.n(node)
            child_order[node] = ()
            continue
        if rule == "liu":
            ordered = sorted(children, key=lambda c: peak[c] - tree.f(c), reverse=True)
        elif rule == "subtree_memory":
            ordered = sorted(children, key=lambda c: peak[c])
        else:  # natural
            ordered = list(children)
        child_order[node] = tuple(ordered)

        completed = 0.0
        best = 0.0
        for child in ordered:
            best = max(best, completed + peak[child])
            completed += tree.f(child)
        best = max(best, completed + tree.n(node) + tree.f(node))
        peak[node] = best

    order = _postorder_sequence(tree, child_order)
    traversal = Traversal(tuple(order), BOTTOMUP)
    return PostOrderResult(
        memory=peak[tree.root],
        traversal=traversal,
        subtree_peak=peak,
        child_order=child_order,
    )


def _postorder_sequence(
    tree: Tree, child_order: Dict[NodeId, Tuple[NodeId, ...]]
) -> List[NodeId]:
    """Bottom-up DFS sequence following ``child_order`` (iterative)."""
    order: List[NodeId] = []
    stack: List[Tuple[NodeId, bool]] = [(tree.root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        stack.append((node, True))
        for child in reversed(child_order[node]):
            stack.append((child, False))
    return order
