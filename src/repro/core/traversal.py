"""Traversals of task trees and their feasibility checkers.

This module implements, verbatim, the two checking procedures of the paper:

* :func:`check_in_core` -- Algorithm 1, deciding whether a given node order is
  a feasible in-core traversal with main memory ``M``;
* :func:`check_out_of_core` -- Algorithm 2, deciding whether a node order plus
  an I/O schedule is feasible, and computing the resulting I/O volume.

It also provides the memory *simulator* used throughout the library:
:func:`memory_profile` replays a traversal and records the memory in use at
every step, so that the minimum feasible main memory of a given traversal is
simply the peak of its profile.

Two conventions are supported (Section III-C of the paper proves them
equivalent under traversal reversal):

* ``"topdown"`` -- the paper's out-tree reading: parents execute before their
  children, the root's input file is resident at the start.
* ``"bottomup"`` -- the in-tree reading natural for assembly trees: children
  execute before their parent, the root's file is resident at the end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from .tree import Tree, TreeValidationError

__all__ = [
    "Traversal",
    "OutOfCoreSchedule",
    "StepRecord",
    "MemoryProfile",
    "TraversalError",
    "memory_profile",
    "peak_memory",
    "check_in_core",
    "check_out_of_core",
    "is_topological",
    "is_postorder",
]

NodeId = Hashable

TOPDOWN = "topdown"
BOTTOMUP = "bottomup"
_CONVENTIONS = (TOPDOWN, BOTTOMUP)


class TraversalError(ValueError):
    """Raised when a traversal object is malformed."""


@dataclass(frozen=True)
class Traversal:
    """An ordering of the tree nodes.

    Attributes
    ----------
    order:
        The node identifiers in execution order.
    convention:
        Either ``"topdown"`` (parents before children, the paper's default) or
        ``"bottomup"`` (children before parents, the assembly-tree reading).
    """

    order: Tuple[NodeId, ...]
    convention: str = BOTTOMUP

    def __post_init__(self) -> None:
        if self.convention not in _CONVENTIONS:
            raise TraversalError(f"unknown convention {self.convention!r}")
        object.__setattr__(self, "order", tuple(self.order))

    def __len__(self) -> int:
        return len(self.order)

    def __iter__(self):
        return iter(self.order)

    def position(self) -> Dict[NodeId, int]:
        """Mapping node -> 0-based step index."""
        return {node: i for i, node in enumerate(self.order)}

    def reversed(self) -> "Traversal":
        """The same traversal read in the other convention.

        Reversing the permutation maps a valid bottom-up (in-tree) traversal
        to a valid top-down (out-tree) traversal using the same amount of
        memory, and conversely (Section III-C).
        """
        other = TOPDOWN if self.convention == BOTTOMUP else BOTTOMUP
        return Traversal(tuple(reversed(self.order)), other)

    def as_convention(self, convention: str) -> "Traversal":
        """Return this traversal expressed in ``convention``."""
        if convention not in _CONVENTIONS:
            raise TraversalError(f"unknown convention {convention!r}")
        return self if convention == self.convention else self.reversed()


@dataclass(frozen=True)
class OutOfCoreSchedule:
    """A complete out-of-core schedule: node order plus file evictions.

    Attributes
    ----------
    traversal:
        The computation order (``sigma`` in the paper).
    evictions:
        ``evictions[v]`` is the 0-based step *before* which the communication
        file of node ``v`` is written to secondary memory (``tau`` in the
        paper).  Files that stay in main memory simply do not appear.
    """

    traversal: Traversal
    evictions: Dict[NodeId, int] = field(default_factory=dict)

    def io_volume(self, tree: Tree) -> float:
        """Total volume written to secondary storage (each write is also read
        back exactly once, so the read volume is identical)."""
        return sum(tree.f(v) for v in self.evictions)


@dataclass(frozen=True)
class StepRecord:
    """Memory accounting for one executed node."""

    node: NodeId
    peak_during: float
    resident_after: float
    io_before: float = 0.0


@dataclass(frozen=True)
class MemoryProfile:
    """Full memory trace of a traversal."""

    steps: Tuple[StepRecord, ...]
    convention: str

    @property
    def peak(self) -> float:
        """The maximum memory in use over the whole execution."""
        return max(s.peak_during for s in self.steps) if self.steps else 0.0

    @property
    def residuals(self) -> List[float]:
        """Memory resident after each step."""
        return [s.resident_after for s in self.steps]


# ----------------------------------------------------------------------
# structural checks
# ----------------------------------------------------------------------
def _check_permutation(tree: Tree, order: Sequence[NodeId]) -> None:
    if len(order) != tree.size or set(order) != set(tree.nodes()):
        raise TraversalError("order is not a permutation of the tree nodes")


def is_topological(tree: Tree, traversal: Traversal) -> bool:
    """True when the traversal respects the precedence constraints.

    Top-down traversals must schedule every parent before its children,
    bottom-up traversals every child before its parent.
    """
    _check_permutation(tree, traversal.order)
    pos = traversal.position()
    for node in tree.nodes():
        parent = tree.parent(node)
        if parent is None:
            continue
        if traversal.convention == TOPDOWN and pos[parent] >= pos[node]:
            return False
        if traversal.convention == BOTTOMUP and pos[parent] <= pos[node]:
            return False
    return True


def is_postorder(tree: Tree, traversal: Traversal) -> bool:
    """True when the traversal processes every subtree contiguously.

    In a postorder traversal, once the first node of a subtree is executed the
    whole subtree is finished before any node outside it (paper, Section
    III-B).  The test also requires the traversal to be topological.
    """
    if not is_topological(tree, traversal):
        return False
    pos = traversal.position()
    for node in tree.nodes():
        indices = sorted(pos[v] for v in tree.subtree_nodes(node))
        if indices[-1] - indices[0] + 1 != len(indices):
            return False
    return True


# ----------------------------------------------------------------------
# memory simulation
# ----------------------------------------------------------------------
def memory_profile(tree: Tree, traversal: Traversal) -> MemoryProfile:
    """Replay a traversal and record the memory in use at every step.

    The traversal must be topological; a :class:`TraversalError` is raised
    otherwise.  The peak of the returned profile is the minimum main memory
    that makes the traversal feasible in-core.
    """
    if not is_topological(tree, traversal):
        raise TraversalError("traversal violates precedence constraints")
    steps: List[StepRecord] = []
    if traversal.convention == TOPDOWN:
        resident = tree.f(tree.root)
        for node in traversal.order:
            children_size = sum(tree.f(c) for c in tree.children(node))
            peak = resident + tree.n(node) + children_size
            resident = resident - tree.f(node) + children_size
            steps.append(StepRecord(node, peak, resident))
    else:
        resident = 0.0
        for node in traversal.order:
            children_size = sum(tree.f(c) for c in tree.children(node))
            peak = resident + tree.n(node) + tree.f(node)
            resident = resident - children_size + tree.f(node)
            steps.append(StepRecord(node, peak, resident))
    return MemoryProfile(tuple(steps), traversal.convention)


def peak_memory(tree: Tree, traversal: Traversal) -> float:
    """Minimum main memory required by ``traversal`` (peak of its profile)."""
    return memory_profile(tree, traversal).peak


# ----------------------------------------------------------------------
# Algorithm 1 -- checking an in-core traversal
# ----------------------------------------------------------------------
def check_in_core(tree: Tree, memory: float, traversal: Traversal) -> bool:
    """Check whether ``traversal`` fits in ``memory`` (paper Algorithm 1).

    The procedure follows the paper exactly for top-down traversals and the
    symmetric accounting for bottom-up traversals.  It returns ``False``
    (instead of raising) when a precedence or memory constraint is violated.
    """
    try:
        _check_permutation(tree, traversal.order)
    except TraversalError:
        return False

    if traversal.convention == BOTTOMUP:
        return check_in_core(tree, memory, traversal.reversed())

    ready = {tree.root}
    m_avail = memory - tree.f(tree.root)
    if m_avail < 0:
        return False
    for node in traversal.order:
        if node not in ready:
            return False
        if tree.mem_req(node) > m_avail + tree.f(node):
            return False
        children_size = sum(tree.f(c) for c in tree.children(node))
        m_avail = m_avail + tree.f(node) - children_size
        ready.discard(node)
        ready.update(tree.children(node))
    return True


# ----------------------------------------------------------------------
# Algorithm 2 -- checking an out-of-core traversal
# ----------------------------------------------------------------------
def check_out_of_core(
    tree: Tree,
    memory: float,
    schedule: OutOfCoreSchedule,
) -> Tuple[bool, float]:
    """Check an out-of-core schedule (paper Algorithm 2).

    Parameters
    ----------
    tree, memory:
        Instance of the problem.
    schedule:
        Node order plus eviction steps.  The order must be top-down (the
        paper's convention); bottom-up orders are transparently reversed,
        in which case the eviction steps must refer to the reversed order.

    Returns
    -------
    (feasible, io_volume):
        ``feasible`` is False when a precedence, memory or eviction constraint
        is violated; ``io_volume`` is the total size written to secondary
        memory (meaningful only when feasible).
    """
    traversal = schedule.traversal
    try:
        _check_permutation(tree, traversal.order)
    except TraversalError:
        return False, 0.0
    if traversal.convention == BOTTOMUP:
        reversed_schedule = OutOfCoreSchedule(traversal.reversed(), dict(schedule.evictions))
        return check_out_of_core(tree, memory, reversed_schedule)

    pos = traversal.position()
    # evictions grouped by the step before which they happen
    evict_at: Dict[int, List[NodeId]] = {}
    for node, step in schedule.evictions.items():
        if node not in tree:
            return False, 0.0
        evict_at.setdefault(step, []).append(node)

    ready = {tree.root}
    m_avail = memory - tree.f(tree.root)
    if m_avail < 0:
        return False, 0.0
    io = 0.0
    written = set()
    # A file can only be written out after it has been produced: for a
    # non-root node v, its file is produced when its parent executes.
    for step, node in enumerate(traversal.order):
        for victim in evict_at.get(step, ()):  # tau(victim) == step
            if pos[victim] <= step:
                # Equation (6): tau(i) < sigma(i) -- the file must be evicted
                # strictly before its owner executes.
                return False, 0.0
            parent = tree.parent(victim)
            produced = parent is None or pos[parent] < step
            if not produced:
                return False, 0.0
            if victim in written:
                return False, 0.0
            written.add(victim)
            m_avail += tree.f(victim)
            io += tree.f(victim)
        if node in written:
            written.discard(node)
            m_avail -= tree.f(node)
        if node not in ready:
            return False, io
        if tree.mem_req(node) > m_avail + tree.f(node):
            return False, io
        children_size = sum(tree.f(c) for c in tree.children(node))
        m_avail = m_avail + tree.f(node) - children_size
        ready.discard(node)
        ready.update(tree.children(node))
    return True, io
