"""Core algorithms of the reproduction: trees, traversals, MinMemory, MinIO.

This package is self-contained (it does not depend on the sparse-matrix
substrate) and implements every algorithm of the paper:

* the task-tree model and its variants (:mod:`repro.core.tree`,
  :mod:`repro.core.builders`);
* feasibility checkers and the memory simulator
  (:mod:`repro.core.traversal`);
* the three MinMemory solvers -- ``PostOrder`` (:mod:`repro.core.postorder`),
  ``Liu`` (:mod:`repro.core.liu`) and ``MinMem``
  (:mod:`repro.core.minmem` / :mod:`repro.core.explore`);
* the MinIO out-of-core scheduler and its six eviction heuristics
  (:mod:`repro.core.minio`);
* the array-backed tree kernel the solver hot paths run on
  (:mod:`repro.core.kernel`);
* exhaustive oracles (:mod:`repro.core.bruteforce`) and pebble-game
  special cases (:mod:`repro.core.pebble`) used for validation.
"""

from .builders import (
    chain_tree,
    from_edges,
    from_liu_model,
    from_networkx,
    from_parent_list,
    from_replacement_model,
    star_tree,
    uniform_weights,
)
from .explore import ExploreResult, ExploreSolver
from .kernel import KernelExploreSolver, TreeKernel
from .liu import LiuResult, Segment, flatten_nodes, liu_min_memory, liu_optimal_traversal
from .minmem import MinMemResult, min_mem, min_memory
from .postorder import POSTORDER_RULES, PostOrderResult, best_postorder, postorder_with_rule
from .serialize import (
    load_tree,
    save_tree,
    solve_report_from_dict,
    solve_report_to_dict,
    traversal_from_dict,
    traversal_to_dict,
    tree_from_dict,
    tree_to_dict,
)
from .traversal import (
    BOTTOMUP,
    TOPDOWN,
    MemoryProfile,
    OutOfCoreSchedule,
    StepRecord,
    Traversal,
    TraversalError,
    check_in_core,
    check_out_of_core,
    is_postorder,
    is_topological,
    memory_profile,
    peak_memory,
)
from .tree import Tree, TreeValidationError

__all__ = [
    # tree
    "Tree",
    "TreeValidationError",
    # kernel
    "TreeKernel",
    "KernelExploreSolver",
    # builders
    "from_parent_list",
    "from_edges",
    "from_networkx",
    "from_replacement_model",
    "from_liu_model",
    "chain_tree",
    "star_tree",
    "uniform_weights",
    # traversal
    "Traversal",
    "TraversalError",
    "OutOfCoreSchedule",
    "MemoryProfile",
    "StepRecord",
    "TOPDOWN",
    "BOTTOMUP",
    "memory_profile",
    "peak_memory",
    "check_in_core",
    "check_out_of_core",
    "is_topological",
    "is_postorder",
    # postorder
    "PostOrderResult",
    "best_postorder",
    "postorder_with_rule",
    "POSTORDER_RULES",
    # liu
    "LiuResult",
    "Segment",
    "liu_optimal_traversal",
    "liu_min_memory",
    "flatten_nodes",
    # minmem / explore
    "MinMemResult",
    "min_mem",
    "min_memory",
    "ExploreSolver",
    "ExploreResult",
    # serialize
    "save_tree",
    "load_tree",
    "tree_to_dict",
    "tree_from_dict",
    "traversal_to_dict",
    "traversal_from_dict",
    "solve_report_to_dict",
    "solve_report_from_dict",
]
